"""The execution-backend registry.

Backends used to be a hardcoded tuple (``config.BACKENDS``) plus an
``if/elif`` chain inside :meth:`HeterogeneousTrainer._build_engine`;
adding a backend meant editing ``core/`` and ``config.py``.  This module
replaces both with a registry: a backend is a **factory** registered
under a name, and everything that needs the backend list — config
validation, the trainer, :func:`~repro.core.trainer.factorize`, the CLI
``--backend`` choices — consults the registry instead of a constant.  A
process-pool or GPU backend therefore becomes::

    from repro.exec import register_backend

    def my_backend(*, scheduler, train, training, test, model, schedule,
                   platform, compute_train_rmse, use_block_store):
        return MyEngine(...)

    register_backend("mypool", my_backend)

after which ``TrainingConfig(backend="mypool")``,
``fit(backend="mypool")`` and ``repro-mf train --backend mypool`` all
work without touching any core module.

Factory contract
----------------
A factory is called with keyword arguments only::

    factory(scheduler=..., train=..., training=..., test=..., model=...,
            schedule=..., platform=..., compute_train_rmse=...,
            use_block_store=...) -> Engine

and must return an object implementing the :class:`repro.exec.Engine`
protocol (``start()`` / ``run()``).  Factories may ignore arguments they
have no use for (the threaded backend, for example, only consults the
platform for GPU latency emulation).

The two built-in backends — ``"simulate"`` (the discrete-event engine
behind every paper figure) and ``"threads"`` (real concurrent worker
threads) — are registered at import time with lazily-imported factories,
so importing the registry never pulls in the engines themselves.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..config import AUTO_BACKEND
from ..exceptions import ConfigurationError

#: A backend factory: keyword-only callable returning an ``Engine``.
BackendFactory = Callable[..., object]

#: Names of the backends that ship with the library.
BUILTIN_BACKENDS: Tuple[str, ...] = ("simulate", "threads", "processes")

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(
    name: str, factory: BackendFactory, *, replace: bool = False
) -> None:
    """Register an execution backend under ``name``.

    Parameters
    ----------
    name:
        The identifier used by ``TrainingConfig(backend=...)``,
        ``fit(backend=...)`` and the CLI.
    factory:
        Keyword-only callable building an engine (see the module
        docstring for the exact signature).
    replace:
        Allow overwriting an existing registration.  Off by default so a
        typo cannot silently shadow a built-in backend.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"backend name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise ConfigurationError(f"backend factory for {name!r} must be callable")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"backend {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (built-ins included — tests use this)."""
    if name not in _REGISTRY:
        raise ConfigurationError(f"backend {name!r} is not registered")
    del _REGISTRY[name]


def get_backend(name: str) -> BackendFactory:
    """Return the factory registered under ``name``.

    Raises
    ------
    ConfigurationError
        If no backend of that name is registered; the message lists the
        currently available names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"backend must be one of {backend_names()}, got {name!r}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """The currently registered backend names, built-ins first."""
    builtins = [name for name in BUILTIN_BACKENDS if name in _REGISTRY]
    extras = sorted(name for name in _REGISTRY if name not in BUILTIN_BACKENDS)
    return tuple(builtins + extras)


def is_registered(name: str) -> bool:
    """Whether ``name`` denotes a registered backend."""
    return name in _REGISTRY


#: Sentinel for "no explicit profile passed — consult the active one".
#: Distinct from ``profile=None``, which *forces* the heuristic
#: no-profile path (the bitwise-pinned legacy behaviour) regardless of
#: any globally installed profile.
_UNSET_PROFILE = object()


def resolve_backend_name(
    name: str,
    n_workers: Optional[int] = None,
    use_block_store: bool = True,
    profile=_UNSET_PROFILE,
) -> str:
    """Resolve the ``"auto"`` pseudo-backend to a concrete registry name.

    With a :class:`repro.tune.TunedProfile` supplied (or installed via
    :func:`repro.tune.set_active_profile`), ``"auto"`` resolves to the
    profile's calibrated backend choice — still sanity-bounded to a
    legal configuration for *this* run (see
    :meth:`repro.tune.TunedProfile.resolve_backend`: ``"processes"``
    demotes to ``"threads"`` for single-worker runs, the legacy gather
    path, and unsupported platforms).

    Without a profile, ``"auto"`` falls back to the original heuristic:

    * ``"processes"`` when the run has more than one worker, the
      platform supports the shared-memory process backend (true
      multicore scaling — worker processes are not GIL-bound), and the
      run uses the block-major data plane (the process backend's only
      rating-data channel);
    * ``"threads"`` otherwise — a single worker gains nothing from
      process isolation, threads need no spawn/attach setup, and only
      threads support the legacy ``use_block_store=False`` gather path.

    Concrete names (registered or not — validation happens at
    :func:`get_backend` time) pass through unchanged, so callers can
    resolve unconditionally.
    """
    if name != AUTO_BACKEND:
        return name
    if profile is _UNSET_PROFILE:
        from ..tune.profile import active_profile

        profile = active_profile()
    if profile is not None:
        return profile.resolve_backend(
            n_workers=n_workers, use_block_store=use_block_store
        )
    from .process import process_backend_supported

    if (
        n_workers is not None
        and n_workers > 1
        and use_block_store
        and process_backend_supported()
    ):
        return "processes"
    return "threads"


# --------------------------------------------------------------------- #
# Built-in backends
# --------------------------------------------------------------------- #
def _simulate_factory(
    *,
    scheduler,
    train,
    training,
    test=None,
    model=None,
    schedule=None,
    platform=None,
    compute_train_rmse=False,
    use_block_store=True,
):
    from ..sim.engine import SimulationEngine

    if platform is None:
        raise ConfigurationError(
            'the "simulate" backend needs a platform to price task durations'
        )
    return SimulationEngine(
        scheduler=scheduler,
        platform=platform,
        train=train,
        training=training,
        test=test,
        model=model,
        schedule=schedule,
        compute_train_rmse=compute_train_rmse,
        use_block_store=use_block_store,
    )


def _threads_factory(
    *,
    scheduler,
    train,
    training,
    test=None,
    model=None,
    schedule=None,
    platform=None,
    compute_train_rmse=False,
    use_block_store=True,
):
    from .threaded import ThreadedEngine

    return ThreadedEngine(
        scheduler=scheduler,
        train=train,
        training=training,
        test=test,
        model=model,
        schedule=schedule,
        platform=platform,
        compute_train_rmse=compute_train_rmse,
        use_block_store=use_block_store,
    )


def _processes_factory(
    *,
    scheduler,
    train,
    training,
    test=None,
    model=None,
    schedule=None,
    platform=None,
    compute_train_rmse=False,
    use_block_store=True,
):
    from .process import ProcessEngine

    return ProcessEngine(
        scheduler=scheduler,
        train=train,
        training=training,
        test=test,
        model=model,
        schedule=schedule,
        platform=platform,
        compute_train_rmse=compute_train_rmse,
        use_block_store=use_block_store,
    )


register_backend("simulate", _simulate_factory)
register_backend("threads", _threads_factory)
register_backend("processes", _processes_factory)
