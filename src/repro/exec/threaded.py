"""A real thread-pool execution backend.

Where :class:`repro.sim.SimulationEngine` advances a virtual clock with
cost-model task durations, :class:`ThreadedEngine` runs the same
scheduler with genuinely concurrent worker threads over the shared numpy
factor matrices.  One thread is spawned per scheduler worker (CPU
threads first, then GPUs, matching the scheduler's index space); each
thread repeatedly asks the scheduler for a task, applies the task's SGD
updates and reports completion.

Correctness relies on the band-lock guarantee the whole paper is built
on: the scheduler only hands out conflict-free tasks, so two in-flight
tasks never share a row band of ``P`` or a column band of ``Q``.  The
kernel therefore writes to disjoint slices of the shared matrices and is
Hogwild-safe without any per-element synchronisation — only the
*scheduler* (a plain-Python data structure) is protected by a lock, and
the numerical work happens outside it.

"GPU" workers are ordinary threads here (the container has no CUDA); an
optional ``gpu_latency_scale`` makes them sleep for a fraction of the
simulated device time after each task, which lets throughput experiments
model a fast-but-latency-bound accelerator against real CPU threads.

The engine produces the same :class:`~repro.sim.trace.ExecutionTrace`
the simulator does, with wall-clock seconds as the time base, so every
downstream analysis (RMSE curves, utilisation, steal counts) works
unchanged on real executions.

Runs follow the stepwise session protocol (:mod:`repro.exec.session`):
:meth:`ThreadedEngine.start` spawns the pool lazily and returns a
:class:`ThreadedSession` whose ``step()`` waits for the next epoch
boundary.  By default the workers *keep running* while the controller
observes — ``step()`` is a window, not a brake, so plain ``run()``
behaves exactly as before.  With ``pause_on_epoch=True`` the pool
additionally quiesces at every boundary (no new tasks are handed out
and in-flight tasks drain before ``step()`` returns), which is what
makes checkpoints of a threaded run well-defined and resumable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..config import TrainingConfig
from ..exceptions import CheckpointError, ExecutionError
from ..hardware import HeterogeneousPlatform
from ..sgd import FactorModel, rmse
from ..sgd.schedules import ConstantSchedule, LearningRateSchedule
from ..sparse import BlockStore, SparseRatingMatrix
from ..core.schedulers import Scheduler
from ..core.tasks import Task
from ..sim.trace import ExecutionTrace, IterationRecord, TaskRecord
from .base import (
    Engine,
    WallClockResult,
    apply_task_updates,
    resolve_stopping_conditions,
)
from .session import (
    STOP_ITERATIONS,
    STOP_TARGET_RMSE,
    STOP_TIME_BUDGET,
    EngineSession,
    EpochReport,
)

#: Seconds an idle worker waits before re-polling the scheduler.  Idle
#: workers are also woken explicitly whenever a task completes, so this
#: only bounds the latency of rare missed wake-ups and of wall-clock
#: budget expiry.
IDLE_POLL_SECONDS = 0.05


@dataclass
class ThreadedResult(WallClockResult):
    """Outcome of one threaded training run (wall-clock time base)."""


class ThreadedSession(EngineSession):
    """One threaded run, observed (and optionally paused) per epoch.

    Shared run state is guarded by one condition variable.  Workers wait
    on the condition while no conflict-free work exists for them — or,
    in ``pause_on_epoch`` mode, while the controller holds the run at an
    epoch boundary — and are woken by every completion (which may have
    released the bands or quota they need) and by every controller
    ``step()``/``stop()``/``finish()``.
    """

    def __init__(
        self,
        engine: "ThreadedEngine",
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
        pause_on_epoch: Union[bool, Callable[[int], bool]] = False,
    ) -> None:
        self._engine = engine
        self._max_iterations = resolve_stopping_conditions(
            iterations,
            target_rmse,
            max_simulated_time,
            default_iterations=engine.training.iterations,
            has_test=engine.test is not None,
            error=ExecutionError,
        )
        self._target_rmse = target_rmse
        self._max_time = max_simulated_time
        self._pause_on_epoch = pause_on_epoch

        self._total_points = engine.scheduler.total_points
        if self._total_points <= 0:
            raise ExecutionError("the scheduler's grid contains no ratings")

        self._trace = ExecutionTrace(target_rmse=target_rmse)
        self._cond = threading.Condition()
        self._threads: List[threading.Thread] = []
        self._launched = False
        self._restored = False
        self._paused = False
        self._stopping = False
        self._converged = False
        self._stop_reason: Optional[str] = None
        self._error: Optional[BaseException] = None
        self._result: Optional[ThreadedResult] = None
        self._in_flight = 0
        self._boundary_busy = False
        self._idle: set = set()
        self._points_completed = 0
        self._iteration = 0
        self._iteration_target = self._total_points
        self._deadline: Optional[float] = None
        self._clock_start = 0.0
        self._last_event = 0.0
        #: Engine seconds accumulated by a restored checkpoint's prefix;
        #: shifts the clock so resumed timestamps continue monotonically.
        self._time_offset = 0.0
        self._reports: List[EpochReport] = []

    # ------------------------------------------------------------------ #
    # Protocol surface
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> "ThreadedEngine":
        return self._engine

    @property
    def epoch(self) -> int:
        with self._cond:
            return self._iteration

    @property
    def done(self) -> bool:
        with self._cond:
            if self._result is not None:
                return True
            if self._reports:
                return False
            return self._stopping or (self._launched and self._run_over_locked())

    @property
    def trace(self) -> ExecutionTrace:
        return self._trace

    @property
    def backend_name(self) -> str:
        return "threads"

    @property
    def started(self) -> bool:
        return self._launched

    def stop(self, reason: str = "callback") -> None:
        with self._cond:
            if not self._stopping:
                self._stopping = True
                if self._stop_reason is None:
                    self._stop_reason = reason
            self._paused = False
            self._cond.notify_all()

    def step(self) -> Optional[EpochReport]:
        with self._cond:
            # Queued reports (several boundaries can pass between steps,
            # or one huge task can cross more than one) are delivered
            # without touching the pause state.
            if self._reports:
                return self._reports.pop(0)
            if self._result is not None or self._stopping:
                return None
            if self._iteration >= self._max_iterations:
                # Only reachable on a restored session: a checkpoint taken
                # at (or past) this run's epoch cap has nothing left to
                # do.  A live run sets _stopping at the boundary that
                # reaches the cap.
                self._stopping = True
                if self._stop_reason is None:
                    self._stop_reason = STOP_ITERATIONS
                self._cond.notify_all()
                return None
        if not self._launched:
            self._launch()
        with self._cond:
            # Resume the pool — unless a boundary already queued a report
            # (a fast worker can reach one before the controller gets
            # here), in which case the pause it set must stand.
            if not self._reports:
                self._paused = False
                self._cond.notify_all()
            while True:
                if self._reports:
                    if self._paused:
                        # The boundary owner set _paused before queueing
                        # the report; wait for in-flight tasks to drain
                        # so the pause state is quiescent.  Boundaries
                        # the pause predicate skipped keep running.
                        while self._in_flight > 0 and self._error is None:
                            self._cond.wait(IDLE_POLL_SECONDS)
                    return self._reports.pop(0)
                if self._error is not None:
                    return None
                if self._run_over_locked():
                    return None
                self._cond.wait(IDLE_POLL_SECONDS)

    def finish(self) -> ThreadedResult:
        if self._result is not None:
            return self._result
        with self._cond:
            if not self._stopping:
                self._stopping = True
                if self._stop_reason is None:
                    # finish() before any stopping condition fired: the
                    # caller is abandoning the run.
                    self._stop_reason = "aborted"
            self._paused = False
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()

        if self._error is not None:
            if isinstance(self._error, ExecutionError):
                raise self._error
            raise ExecutionError(
                f"a worker thread failed: {self._error!r}"
            ) from self._error

        self._trace.final_time = self._last_event
        self._result = ThreadedResult(
            model=self._engine.model,
            trace=self._trace,
            converged=self._converged,
            stop_reason=self._stop_reason or STOP_ITERATIONS,
        )
        return self._result

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        with self._cond:
            if self._launched and self._in_flight > 0:
                raise CheckpointError(
                    "a threaded session can only be checkpointed while "
                    "quiescent at an epoch boundary; start the session with "
                    "pause_on_epoch=True (the Checkpoint callback does this "
                    "automatically)"
                )
            if self._launched and not (
                self._paused or self._run_over_locked() or self._stopping
            ):
                raise CheckpointError(
                    "a threaded session can only be checkpointed while "
                    "paused at an epoch boundary (pause_on_epoch=True)"
                )
            return {
                "iteration": self._iteration,
                "iteration_target": self._iteration_target,
                "points_completed": self._points_completed,
                "now": self._last_event,
                "seq": len(self._trace.tasks),
                "converged": self._converged,
                "idle_workers": [],
                "pending_dispatch": None,
                "in_flight": [],
                "pending_reports": [
                    report.to_state() for report in self._reports
                ],
            }

    def load_state_dict(self, state: dict) -> None:
        if self._launched:
            raise CheckpointError(
                "session state can only be restored before the first step()"
            )
        if state["in_flight"]:
            raise CheckpointError(
                "this checkpoint carries simulated in-flight tasks (it was "
                "captured from a multi-worker simulator run); resume it on "
                'the "simulate" backend'
            )
        self._restored = True
        self._iteration = int(state["iteration"])
        self._iteration_target = int(state["iteration_target"])
        self._points_completed = int(state["points_completed"])
        self._converged = bool(state["converged"])
        self._time_offset = float(state["now"])
        self._last_event = float(state["now"])
        self._reports = [
            EpochReport.from_state(report) for report in state["pending_reports"]
        ]

    # ------------------------------------------------------------------ #
    # Pool management
    # ------------------------------------------------------------------ #
    def _should_pause(self, epoch: int) -> bool:
        """Whether the boundary of 0-based ``epoch`` must quiesce the pool."""
        if callable(self._pause_on_epoch):
            return bool(self._pause_on_epoch(epoch))
        return bool(self._pause_on_epoch)

    def _run_over_locked(self) -> bool:
        """Whether every worker thread has exited (lock held or not needed)."""
        return self._launched and all(
            not thread.is_alive() for thread in self._threads
        )

    def _launch(self) -> None:
        self._launched = True
        if not self._restored:
            self._engine.scheduler.start_iteration()
        # A restored session shifts the clock back by the checkpointed
        # engine time so wall-clock stamps (and the time budget) continue
        # where the previous run left off.
        self._clock_start = time.monotonic() - self._time_offset
        if self._max_time is not None:
            self._deadline = self._clock_start + self._max_time
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-exec-{index}",
                daemon=True,
            )
            for index in range(self._engine.n_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # Worker threads
    # ------------------------------------------------------------------ #
    def _elapsed(self) -> float:
        return time.monotonic() - self._clock_start

    def _worker_loop(self, worker_index: int) -> None:
        is_gpu = self._engine.scheduler.is_gpu_worker(worker_index)
        while True:
            with self._cond:
                try:
                    task, rate_iteration = self._acquire_task(worker_index)
                except BaseException as exc:
                    # A scheduler-side failure (e.g. a LockTable accounting
                    # error) must surface through finish(), not silently
                    # kill this thread and hang the others.
                    if self._error is None:
                        self._error = exc
                    self._cond.notify_all()
                    return
                if task is None:
                    return
            start = self._elapsed()
            try:
                self._execute_task(task, rate_iteration, is_gpu)
            except BaseException as exc:  # propagate to finish()
                with self._cond:
                    self._engine.scheduler.abort_task(task)
                    self._in_flight -= 1
                    if self._error is None:
                        self._error = exc
                    self._cond.notify_all()
                return
            end = self._elapsed()
            owns_boundary = False
            with self._cond:
                try:
                    owns_boundary = self._book_completion(
                        worker_index, is_gpu, task, start, end
                    )
                except BaseException as exc:
                    # Completion bookkeeping failed: surface the error
                    # instead of leaving the surviving workers polling a
                    # run that can never finish.
                    if self._error is None:
                        self._error = exc
                self._cond.notify_all()
            if self._error is not None:
                return
            if owns_boundary:
                try:
                    self._process_boundaries()
                except BaseException as exc:
                    with self._cond:
                        if self._error is None:
                            self._error = exc
                        self._boundary_busy = False
                        self._cond.notify_all()
                    return

    def _acquire_task(self, worker_index: int):
        """Block until a task is available, the run ends, or it deadlocks.

        Returns ``(task, iteration)`` — the iteration number captured at
        dispatch prices the learning rate even if other workers advance
        the iteration while this task is still executing — or
        ``(None, 0)`` when the worker should exit.  Caller holds the lock.
        """
        while True:
            if self._stopping or self._error is not None:
                return None, 0
            if self._deadline is not None and time.monotonic() > self._deadline:
                self._stopping = True
                if self._stop_reason is None:
                    self._stop_reason = STOP_TIME_BUDGET
                self._cond.notify_all()
                return None, 0
            if self._paused:
                # The controller holds the run at an epoch boundary.
                self._cond.wait(IDLE_POLL_SECONDS)
                continue
            task = self._engine.scheduler.next_task(worker_index)
            if task is not None:
                self._idle.discard(worker_index)
                self._in_flight += 1
                return task, self._iteration
            self._idle.add(worker_index)
            if self._in_flight == 0 and len(self._idle) == self._engine.n_workers:
                # Nobody holds a task and nobody can get one: no future
                # completion can unblock us (mirrors the simulator's
                # all-idle check).
                self._error = ExecutionError(
                    "all workers are idle with work remaining; the grid or "
                    "quota configuration cannot make progress"
                )
                self._cond.notify_all()
                return None, 0
            self._cond.wait(timeout=IDLE_POLL_SECONDS)

    def _execute_task(self, task: Task, iteration: int, is_gpu: bool) -> None:
        """Apply one task's SGD updates (no lock held — see module docstring)."""
        engine = self._engine
        apply_task_updates(
            engine.model,
            engine.train,
            task,
            engine.schedule(iteration),
            engine.training,
            exact_kernel=engine.exact_kernel,
            store=engine._store,
        )
        if is_gpu and engine.gpu_latency_scale > 0 and engine.platform is not None:
            device = engine.platform.all_devices[task.worker_index]
            work = task.block_work(engine.training.latent_factors)
            time.sleep(device.process_time(work) * engine.gpu_latency_scale)

    def _book_completion(
        self,
        worker_index: int,
        is_gpu: bool,
        task: Task,
        start: float,
        end: float,
    ) -> bool:
        """Book a completed task (locked).

        Returns ``True`` when this worker crossed an iteration boundary
        and no other worker is already processing one: the caller must
        then run :meth:`_process_boundaries` after releasing the lock.
        """
        self._engine.scheduler.complete_task(task)
        self._in_flight -= 1
        self._points_completed += task.nnz
        self._last_event = max(self._last_event, end)
        self._trace.record_task(
            TaskRecord(
                worker_index=worker_index,
                is_gpu=is_gpu,
                start_time=start,
                end_time=end,
                points=task.nnz,
                n_blocks=len(task.blocks),
                stolen=task.stolen,
                iteration=self._iteration,
            )
        )
        if self._deadline is not None and time.monotonic() > self._deadline:
            self._stopping = True
            if self._stop_reason is None:
                self._stop_reason = STOP_TIME_BUDGET
        if (
            not self._stopping
            and not self._boundary_busy
            and self._points_completed >= self._iteration_target
        ):
            self._boundary_busy = True
            return True
        return False

    def _process_boundaries(self) -> None:
        """Process iteration boundaries, evaluating RMSE outside the lock.

        Iterations complete when the cumulative processed ratings reach
        the next multiple of the grid's total, with the same accounting
        as the simulator (other tasks may be in flight across the
        boundary there too).  The counter advance and the scheduler's
        quota reset happen under the lock so the other workers move on to
        the next iteration immediately; the O(test nnz) RMSE evaluation
        happens *outside* it — it would buy no consistency anyway, since
        in-flight kernels mutate the factors regardless.  Only one worker
        owns boundary processing at a time (``_boundary_busy``), which
        keeps the iteration records ordered.
        """
        engine = self._engine
        while True:
            with self._cond:
                if self._stopping or self._points_completed < self._iteration_target:
                    self._boundary_busy = False
                    self._cond.notify_all()
                    return
                index = self._iteration
                points = self._points_completed
                stamp = self._last_event
                self._iteration += 1
                self._iteration_target += self._total_points
                engine.scheduler.start_iteration()
                if self._should_pause(index):
                    # Hold the run at this boundary: workers stop drawing
                    # new tasks and the in-flight remainder drains while
                    # the controller consumes the report.
                    self._paused = True
                else:
                    # The quota reset unblocks the idle workers now — wake
                    # them before the RMSE evaluation, not after it.
                    self._cond.notify_all()

            test_rmse = (
                rmse(engine.model, engine.test) if engine.test is not None else None
            )
            train_rmse = (
                rmse(engine.model, engine.train)
                if engine.compute_train_rmse
                else None
            )

            with self._cond:
                self._trace.record_iteration(
                    IterationRecord(
                        iteration=index,
                        simulated_time=stamp,
                        train_rmse=train_rmse,
                        test_rmse=test_rmse,
                        points_processed=points,
                    )
                )
                if self._target_rmse is not None and test_rmse is not None:
                    if test_rmse <= self._target_rmse:
                        self._converged = True
                        self._trace.target_reached_at = stamp
                        self._stopping = True
                        if self._stop_reason is None:
                            self._stop_reason = STOP_TARGET_RMSE
                if self._iteration >= self._max_iterations and not self._stopping:
                    self._stopping = True
                    if self._stop_reason is None:
                        self._stop_reason = STOP_ITERATIONS
                self._reports.append(
                    EpochReport(
                        epoch=index,
                        engine_time=stamp,
                        train_rmse=train_rmse,
                        test_rmse=test_rmse,
                        points_processed=points,
                        converged=self._converged,
                    )
                )
                self._cond.notify_all()


class ThreadedEngine(Engine):
    """Runs a scheduler with a pool of real concurrent worker threads.

    Parameters
    ----------
    scheduler:
        The block scheduler to execute; one thread is created per
        scheduler worker.
    train:
        Training ratings.
    training:
        Hyper-parameters (``k``, ``gamma``, ``lambda``).
    test:
        Optional held-out ratings; needed for RMSE-vs-time curves and
        time-to-target stopping.
    model:
        Optional pre-initialised factor model (a fresh one is created
        otherwise).
    schedule:
        Learning-rate schedule; constant by default.
    platform:
        Optional simulated platform description.  Only consulted for
        ``gpu_latency_scale``; when given, its worker count must match
        the scheduler's.
    exact_kernel:
        Use the exact per-rating kernel (slow; for small validation runs).
    compute_train_rmse:
        Also record training RMSE at iteration boundaries.
    gpu_latency_scale:
        When positive (requires ``platform``), each GPU worker sleeps for
        this fraction of its task's *simulated* device time after the
        numerical work, emulating device latency against real CPU
        threads.  Zero (the default) disables the emulation.
    use_block_store:
        Feed the kernels through the block-major data plane
        (:class:`~repro.sparse.BlockStore`).  Disabling it restores the
        legacy gather-per-task path — bitwise-identical, only slower —
        which exists for benchmarking the data plane against its
        predecessor.
    """

    backend_name = "threads"

    def __init__(
        self,
        scheduler: Scheduler,
        train: SparseRatingMatrix,
        training: TrainingConfig,
        test: Optional[SparseRatingMatrix] = None,
        model: Optional[FactorModel] = None,
        schedule: Optional[LearningRateSchedule] = None,
        platform: Optional[HeterogeneousPlatform] = None,
        exact_kernel: bool = False,
        compute_train_rmse: bool = False,
        gpu_latency_scale: float = 0.0,
        use_block_store: bool = True,
    ) -> None:
        if platform is not None and platform.n_workers != scheduler.n_workers:
            raise ExecutionError(
                f"platform has {platform.n_workers} workers but the scheduler "
                f"expects {scheduler.n_workers}"
            )
        if gpu_latency_scale < 0:
            raise ExecutionError(
                f"gpu_latency_scale must be >= 0, got {gpu_latency_scale}"
            )
        if gpu_latency_scale > 0 and platform is None:
            raise ExecutionError("gpu_latency_scale needs a platform for timing")
        self.scheduler = scheduler
        self.train = train
        self.test = test
        self.training = training
        self.model = model or FactorModel.for_matrix(train, training)
        self.schedule = schedule or ConstantSchedule(training.learning_rate)
        self.platform = platform
        self.exact_kernel = exact_kernel
        self.compute_train_rmse = compute_train_rmse
        self.gpu_latency_scale = gpu_latency_scale
        self.n_workers = scheduler.n_workers
        # Shared, immutable after materialisation; worker threads read it
        # concurrently without locking (see BlockStore's thread-safety note).
        self._store = BlockStore(train) if use_block_store else None
        self._started = False

    # ------------------------------------------------------------------ #
    # Session protocol
    # ------------------------------------------------------------------ #
    def start(
        self,
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
        pause_on_epoch: Union[bool, Callable[[int], bool]] = False,
    ) -> ThreadedSession:
        """Begin a stepwise threaded run (see :class:`ThreadedSession`).

        ``max_simulated_time`` bounds *wall-clock* seconds for this
        backend; the parameter keeps its protocol name so callers can
        switch backends without changing call sites.
        """
        if self._started:
            raise ExecutionError("a ThreadedEngine can only be run once")
        self._started = True
        return ThreadedSession(
            self,
            iterations=iterations,
            target_rmse=target_rmse,
            max_simulated_time=max_simulated_time,
            pause_on_epoch=pause_on_epoch,
        )
