"""A real thread-pool execution backend.

Where :class:`repro.sim.SimulationEngine` advances a virtual clock with
cost-model task durations, :class:`ThreadedEngine` runs the same
scheduler with genuinely concurrent worker threads over the shared numpy
factor matrices.  One thread is spawned per scheduler worker (CPU
threads first, then GPUs, matching the scheduler's index space); each
thread repeatedly asks the scheduler for a task, applies the task's SGD
updates and reports completion.

Correctness relies on the band-lock guarantee the whole paper is built
on: the scheduler only hands out conflict-free tasks, so two in-flight
tasks never share a row band of ``P`` or a column band of ``Q``.  The
kernel therefore writes to disjoint slices of the shared matrices and is
Hogwild-safe without any per-element synchronisation — only the
*scheduler* (a plain-Python data structure) is protected by a lock, and
the numerical work happens outside it.

"GPU" workers are ordinary threads here (the container has no CUDA); an
optional ``gpu_latency_scale`` makes them sleep for a fraction of the
simulated device time after each task, which lets throughput experiments
model a fast-but-latency-bound accelerator against real CPU threads.

The engine produces the same :class:`~repro.sim.trace.ExecutionTrace`
the simulator does, with wall-clock seconds as the time base, so every
downstream analysis (RMSE curves, utilisation, steal counts) works
unchanged on real executions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from ..config import TrainingConfig
from ..exceptions import ExecutionError
from ..hardware import HeterogeneousPlatform
from ..sgd import FactorModel, rmse
from ..sgd.schedules import ConstantSchedule, LearningRateSchedule
from ..sparse import BlockStore, SparseRatingMatrix
from ..core.schedulers import Scheduler
from ..core.tasks import Task
from ..sim.trace import ExecutionTrace, IterationRecord, TaskRecord
from .base import (
    Engine,
    EngineResult,
    apply_task_updates,
    resolve_stopping_conditions,
)

#: Seconds an idle worker waits before re-polling the scheduler.  Idle
#: workers are also woken explicitly whenever a task completes, so this
#: only bounds the latency of rare missed wake-ups and of wall-clock
#: budget expiry.
IDLE_POLL_SECONDS = 0.05


@dataclass
class ThreadedResult(EngineResult):
    """Outcome of one threaded training run.

    ``trace.final_time`` (and hence :attr:`simulated_time`) is wall-clock
    seconds from the start of :meth:`ThreadedEngine.run` to the last task
    completion.
    """

    @property
    def wall_time(self) -> float:
        """Wall-clock seconds of the run (alias of :attr:`simulated_time`)."""
        return self.trace.final_time

    @property
    def throughput(self) -> float:
        """Ratings processed per wall-clock second."""
        if self.trace.final_time <= 0:
            return 0.0
        return self.trace.total_points() / self.trace.final_time


class ThreadedEngine(Engine):
    """Runs a scheduler with a pool of real concurrent worker threads.

    Parameters
    ----------
    scheduler:
        The block scheduler to execute; one thread is created per
        scheduler worker.
    train:
        Training ratings.
    training:
        Hyper-parameters (``k``, ``gamma``, ``lambda``).
    test:
        Optional held-out ratings; needed for RMSE-vs-time curves and
        time-to-target stopping.
    model:
        Optional pre-initialised factor model (a fresh one is created
        otherwise).
    schedule:
        Learning-rate schedule; constant by default.
    platform:
        Optional simulated platform description.  Only consulted for
        ``gpu_latency_scale``; when given, its worker count must match
        the scheduler's.
    exact_kernel:
        Use the exact per-rating kernel (slow; for small validation runs).
    compute_train_rmse:
        Also record training RMSE at iteration boundaries.
    gpu_latency_scale:
        When positive (requires ``platform``), each GPU worker sleeps for
        this fraction of its task's *simulated* device time after the
        numerical work, emulating device latency against real CPU
        threads.  Zero (the default) disables the emulation.
    use_block_store:
        Feed the kernels through the block-major data plane
        (:class:`~repro.sparse.BlockStore`).  Disabling it restores the
        legacy gather-per-task path — bitwise-identical, only slower —
        which exists for benchmarking the data plane against its
        predecessor.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        train: SparseRatingMatrix,
        training: TrainingConfig,
        test: Optional[SparseRatingMatrix] = None,
        model: Optional[FactorModel] = None,
        schedule: Optional[LearningRateSchedule] = None,
        platform: Optional[HeterogeneousPlatform] = None,
        exact_kernel: bool = False,
        compute_train_rmse: bool = False,
        gpu_latency_scale: float = 0.0,
        use_block_store: bool = True,
    ) -> None:
        if platform is not None and platform.n_workers != scheduler.n_workers:
            raise ExecutionError(
                f"platform has {platform.n_workers} workers but the scheduler "
                f"expects {scheduler.n_workers}"
            )
        if gpu_latency_scale < 0:
            raise ExecutionError(
                f"gpu_latency_scale must be >= 0, got {gpu_latency_scale}"
            )
        if gpu_latency_scale > 0 and platform is None:
            raise ExecutionError("gpu_latency_scale needs a platform for timing")
        self.scheduler = scheduler
        self.train = train
        self.test = test
        self.training = training
        self.model = model or FactorModel.for_matrix(train, training)
        self.schedule = schedule or ConstantSchedule(training.learning_rate)
        self.platform = platform
        self.exact_kernel = exact_kernel
        self.compute_train_rmse = compute_train_rmse
        self.gpu_latency_scale = gpu_latency_scale
        self.n_workers = scheduler.n_workers
        # Shared, immutable after materialisation; worker threads read it
        # concurrently without locking (see BlockStore's thread-safety note).
        self._store = BlockStore(train) if use_block_store else None

        # Shared run state, guarded by the condition's lock.  Workers wait
        # on the condition while no conflict-free work exists for them and
        # are woken by every completion (which may have released the bands
        # or quota they need).
        self._cond = threading.Condition()
        self._trace: Optional[ExecutionTrace] = None
        self._started = False
        self._stopping = False
        self._converged = False
        self._error: Optional[BaseException] = None
        self._in_flight = 0
        self._boundary_busy = False
        self._idle: set = set()
        self._points_completed = 0
        self._iteration = 0
        self._iteration_target = 0
        self._total_points = 0
        self._max_iterations = 0
        self._target_rmse: Optional[float] = None
        self._deadline: Optional[float] = None
        self._clock_start = 0.0
        self._last_event = 0.0

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
    ) -> ThreadedResult:
        """Train with real worker threads until a stopping condition is met.

        ``max_simulated_time`` bounds *wall-clock* seconds for this
        backend; the parameter keeps its protocol name so callers can
        switch backends without changing call sites.
        """
        if self._started:
            raise ExecutionError("a ThreadedEngine can only be run once")
        self._started = True
        self._max_iterations = resolve_stopping_conditions(
            iterations,
            target_rmse,
            max_simulated_time,
            default_iterations=self.training.iterations,
            has_test=self.test is not None,
            error=ExecutionError,
        )
        self._target_rmse = target_rmse

        self._total_points = self.scheduler.total_points
        if self._total_points <= 0:
            raise ExecutionError("the scheduler's grid contains no ratings")
        self._iteration_target = self._total_points

        trace = ExecutionTrace(target_rmse=target_rmse)
        self._trace = trace
        self.scheduler.start_iteration()
        self._clock_start = time.monotonic()
        if max_simulated_time is not None:
            self._deadline = self._clock_start + max_simulated_time

        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-exec-{index}",
                daemon=True,
            )
            for index in range(self.n_workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if self._error is not None:
            if isinstance(self._error, ExecutionError):
                raise self._error
            raise ExecutionError(
                f"a worker thread failed: {self._error!r}"
            ) from self._error

        trace.final_time = self._last_event
        return ThreadedResult(
            model=self.model, trace=trace, converged=self._converged
        )

    # ------------------------------------------------------------------ #
    # Worker threads
    # ------------------------------------------------------------------ #
    def _elapsed(self) -> float:
        return time.monotonic() - self._clock_start

    def _worker_loop(self, worker_index: int) -> None:
        is_gpu = self.scheduler.is_gpu_worker(worker_index)
        while True:
            with self._cond:
                try:
                    task, rate_iteration = self._acquire_task(worker_index)
                except BaseException as exc:
                    # A scheduler-side failure (e.g. a LockTable accounting
                    # error) must surface through run(), not silently kill
                    # this thread and hang the others.
                    if self._error is None:
                        self._error = exc
                    self._cond.notify_all()
                    return
                if task is None:
                    return
            start = self._elapsed()
            try:
                self._execute_task(task, rate_iteration, is_gpu)
            except BaseException as exc:  # propagate to run()
                with self._cond:
                    self.scheduler.abort_task(task)
                    self._in_flight -= 1
                    if self._error is None:
                        self._error = exc
                    self._cond.notify_all()
                return
            end = self._elapsed()
            owns_boundary = False
            with self._cond:
                try:
                    owns_boundary = self._book_completion(
                        worker_index, is_gpu, task, start, end
                    )
                except BaseException as exc:
                    # Completion bookkeeping failed: surface the error
                    # instead of leaving the surviving workers polling a
                    # run that can never finish.
                    if self._error is None:
                        self._error = exc
                self._cond.notify_all()
            if self._error is not None:
                return
            if owns_boundary:
                try:
                    self._process_boundaries()
                except BaseException as exc:
                    with self._cond:
                        if self._error is None:
                            self._error = exc
                        self._boundary_busy = False
                        self._cond.notify_all()
                    return

    def _acquire_task(self, worker_index: int):
        """Block until a task is available, the run ends, or it deadlocks.

        Returns ``(task, iteration)`` — the iteration number captured at
        dispatch prices the learning rate even if other workers advance
        the iteration while this task is still executing — or
        ``(None, 0)`` when the worker should exit.  Caller holds the lock.
        """
        while True:
            if self._stopping or self._error is not None:
                return None, 0
            if self._deadline is not None and time.monotonic() > self._deadline:
                self._stopping = True
                self._cond.notify_all()
                return None, 0
            task = self.scheduler.next_task(worker_index)
            if task is not None:
                self._idle.discard(worker_index)
                self._in_flight += 1
                return task, self._iteration
            self._idle.add(worker_index)
            if self._in_flight == 0 and len(self._idle) == self.n_workers:
                # Nobody holds a task and nobody can get one: no future
                # completion can unblock us (mirrors the simulator's
                # all-idle check).
                self._error = ExecutionError(
                    "all workers are idle with work remaining; the grid or "
                    "quota configuration cannot make progress"
                )
                self._cond.notify_all()
                return None, 0
            self._cond.wait(timeout=IDLE_POLL_SECONDS)

    def _execute_task(self, task: Task, iteration: int, is_gpu: bool) -> None:
        """Apply one task's SGD updates (no lock held — see module docstring)."""
        apply_task_updates(
            self.model,
            self.train,
            task,
            self.schedule(iteration),
            self.training,
            exact_kernel=self.exact_kernel,
            store=self._store,
        )
        if is_gpu and self.gpu_latency_scale > 0 and self.platform is not None:
            device = self.platform.all_devices[task.worker_index]
            work = task.block_work(self.training.latent_factors)
            time.sleep(device.process_time(work) * self.gpu_latency_scale)

    def _book_completion(
        self,
        worker_index: int,
        is_gpu: bool,
        task: Task,
        start: float,
        end: float,
    ) -> bool:
        """Book a completed task (locked).

        Returns ``True`` when this worker crossed an iteration boundary
        and no other worker is already processing one: the caller must
        then run :meth:`_process_boundaries` after releasing the lock.
        """
        self.scheduler.complete_task(task)
        self._in_flight -= 1
        self._points_completed += task.nnz
        self._last_event = max(self._last_event, end)
        self._trace.record_task(
            TaskRecord(
                worker_index=worker_index,
                is_gpu=is_gpu,
                start_time=start,
                end_time=end,
                points=task.nnz,
                n_blocks=len(task.blocks),
                stolen=task.stolen,
                iteration=self._iteration,
            )
        )
        if self._deadline is not None and time.monotonic() > self._deadline:
            self._stopping = True
        if (
            not self._stopping
            and not self._boundary_busy
            and self._points_completed >= self._iteration_target
        ):
            self._boundary_busy = True
            return True
        return False

    def _process_boundaries(self) -> None:
        """Process iteration boundaries, evaluating RMSE outside the lock.

        Iterations complete when the cumulative processed ratings reach
        the next multiple of the grid's total, with the same accounting
        as the simulator (other tasks may be in flight across the
        boundary there too).  The counter advance and the scheduler's
        quota reset happen under the lock so the other workers move on to
        the next iteration immediately; the O(test nnz) RMSE evaluation
        happens *outside* it — it would buy no consistency anyway, since
        in-flight kernels mutate the factors regardless.  Only one worker
        owns boundary processing at a time (``_boundary_busy``), which
        keeps the iteration records ordered.
        """
        while True:
            with self._cond:
                if self._stopping or self._points_completed < self._iteration_target:
                    self._boundary_busy = False
                    self._cond.notify_all()
                    return
                index = self._iteration
                points = self._points_completed
                stamp = self._last_event
                self._iteration += 1
                self._iteration_target += self._total_points
                self.scheduler.start_iteration()
                # The quota reset unblocks the idle workers now — wake them
                # before the RMSE evaluation, not after it.
                self._cond.notify_all()

            test_rmse = (
                rmse(self.model, self.test) if self.test is not None else None
            )
            train_rmse = (
                rmse(self.model, self.train) if self.compute_train_rmse else None
            )

            with self._cond:
                self._trace.record_iteration(
                    IterationRecord(
                        iteration=index,
                        simulated_time=stamp,
                        train_rmse=train_rmse,
                        test_rmse=test_rmse,
                        points_processed=points,
                    )
                )
                if self._target_rmse is not None and test_rmse is not None:
                    if test_rmse <= self._target_rmse:
                        self._converged = True
                        self._trace.target_reached_at = stamp
                        self._stopping = True
                if self._iteration >= self._max_iterations:
                    self._stopping = True
                self._cond.notify_all()
