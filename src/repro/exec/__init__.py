"""Execution backends: turning scheduler decisions into SGD updates.

This package defines the :class:`Engine` protocol every backend
implements and ships the real-parallelism backend:

* :mod:`repro.exec.base` — the :class:`Engine` interface and the
  backend-agnostic :class:`EngineResult`;
* :mod:`repro.exec.threaded` — :class:`ThreadedEngine`, a thread pool of
  genuinely concurrent workers applying conflict-free block updates to
  the shared factor matrices (Hogwild-safe under the band-lock
  guarantee).

The discrete-event backend lives in :mod:`repro.sim` and implements the
same protocol; select between them with ``backend="simulate"`` or
``backend="threads"`` on :class:`~repro.config.TrainingConfig`,
:meth:`~repro.core.trainer.HeterogeneousTrainer.fit` or the CLI.
"""

from .base import BACKENDS, Engine, EngineResult
from .threaded import IDLE_POLL_SECONDS, ThreadedEngine, ThreadedResult

__all__ = [
    "BACKENDS",
    "Engine",
    "EngineResult",
    "IDLE_POLL_SECONDS",
    "ThreadedEngine",
    "ThreadedResult",
]
