"""Execution backends: turning scheduler decisions into SGD updates.

This package defines the execution API every backend implements and the
machinery built on top of it:

* :mod:`repro.exec.base` — the :class:`Engine` interface (``start()`` /
  ``run()``) and the backend-agnostic :class:`EngineResult`;
* :mod:`repro.exec.session` — the stepwise session protocol
  (:class:`EngineSession`, :class:`EpochReport`): one ``step()`` per
  epoch, observable and stoppable between steps;
* :mod:`repro.exec.callbacks` — epoch-boundary callbacks
  (:class:`EarlyStopping`, :class:`Checkpoint`, :class:`JsonlLogger`,
  :class:`TimeBudget`);
* :mod:`repro.exec.checkpoint` — :class:`TrainCheckpoint`, serializable
  snapshots that resume bitwise-identically on the simulator;
* :mod:`repro.exec.registry` — the pluggable backend registry
  (:func:`register_backend` / :func:`get_backend`), consulted by config
  validation, the trainer and the CLI;
* :mod:`repro.exec.threaded` — :class:`ThreadedEngine`, a thread pool of
  genuinely concurrent workers applying conflict-free block updates to
  the shared factor matrices (Hogwild-safe under the band-lock
  guarantee);
* :mod:`repro.exec.process` — :class:`ProcessEngine`, worker *processes*
  over ``multiprocessing.shared_memory``-backed factors and block data:
  the same band-lock execution model without the GIL, for true multicore
  scaling.

The discrete-event backend lives in :mod:`repro.sim` and implements the
same protocol; select between backends with ``backend="simulate"`` /
``"threads"`` / ``"processes"`` (or any registered name, or ``"auto"``)
on :class:`~repro.config.TrainingConfig`,
:meth:`~repro.core.trainer.HeterogeneousTrainer.fit` or the CLI.
"""

from .session import (
    STOP_CALLBACK,
    STOP_ITERATIONS,
    STOP_TARGET_RMSE,
    STOP_TIME_BUDGET,
    EngineSession,
    EpochReport,
    run_session,
)
from .base import BACKENDS, Engine, EngineResult, WallClockResult
from .callbacks import (
    CONTINUE,
    STOP,
    Callback,
    CallbackList,
    Checkpoint,
    EarlyStopping,
    JsonlLogger,
    TimeBudget,
)
from .checkpoint import TrainCheckpoint
from .registry import (
    BUILTIN_BACKENDS,
    backend_names,
    get_backend,
    is_registered,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)
from .threaded import IDLE_POLL_SECONDS, ThreadedEngine, ThreadedResult, ThreadedSession
from .process import (
    ProcessEngine,
    ProcessResult,
    ProcessSession,
    process_backend_supported,
)

__all__ = [
    "BACKENDS",
    "BUILTIN_BACKENDS",
    "Engine",
    "EngineResult",
    "WallClockResult",
    "EngineSession",
    "EpochReport",
    "run_session",
    "STOP_CALLBACK",
    "STOP_ITERATIONS",
    "STOP_TARGET_RMSE",
    "STOP_TIME_BUDGET",
    "CONTINUE",
    "STOP",
    "Callback",
    "CallbackList",
    "Checkpoint",
    "EarlyStopping",
    "JsonlLogger",
    "TimeBudget",
    "TrainCheckpoint",
    "backend_names",
    "get_backend",
    "is_registered",
    "register_backend",
    "resolve_backend_name",
    "unregister_backend",
    "IDLE_POLL_SECONDS",
    "ThreadedEngine",
    "ThreadedResult",
    "ThreadedSession",
    "ProcessEngine",
    "ProcessResult",
    "ProcessSession",
    "process_backend_supported",
]
