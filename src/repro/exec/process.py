"""A zero-copy multiprocess execution backend.

:class:`ThreadedEngine` proved that real concurrent workers can drive
the paper's schedulers over shared factor matrices — but its workers are
OS threads, so on CPython the numerical kernels contend for the GIL and
four workers can end up *slower* than the serial simulator.
:class:`ProcessEngine` (``backend="processes"``) keeps the exact same
execution model and moves the workers into separate **processes**, which
scale across cores for real:

* the factor matrices ``P`` and ``Q`` live in
  ``multiprocessing.shared_memory`` segments
  (:class:`~repro.shm.SharedSegment`); every worker maps the same
  physical pages, so kernel updates are visible everywhere with zero
  copies and zero serialisation;
* the block-major rating arrays are materialised once into a shared
  segment (:meth:`repro.sparse.BlockStore.to_shared`) that workers
  attach by name — per task, the controller sends only the task's grid
  keys and the learning rate (a few dozen bytes);
* the **controller** (the parent process) runs the scheduler, exactly as
  the simulator does: it hands conflict-free tasks to free workers,
  books completions, advances epoch accounting and evaluates RMSE.
  Workers never see the scheduler — they are pure kernel executors.

Correctness rests on the same band-lock guarantee as the threaded
backend: the scheduler only dispatches tasks whose row and column bands
are disjoint from every in-flight task's, so concurrent worker processes
write to disjoint slices of the shared segments and need no per-element
synchronisation (see DESIGN.md, "Process safety of the band lock").

Sessions follow the stepwise protocol: ``step()`` pumps completions
until the next epoch boundary; with ``pause_on_epoch`` the controller
stops dispatching at selected boundaries and drains in-flight tasks, so
checkpoints observe a quiescent run — :class:`TrainCheckpoint` snapshots
**copy out of** the shared segments and stay valid after the segments
are unlinked.  With one worker the sequence of scheduler decisions and
kernel calls is identical to the simulator's, so 1-worker runs are
bitwise-identical to ``backend="simulate"`` (pinned by the parity
suite), and quiescent checkpoints are portable across all backends.

Lifecycle: the controller owns every segment and unlinks them exactly
once when the session finishes — including when a worker dies mid-epoch
or a callback raises (``finish()`` is the single cleanup point and is
idempotent).  Workers close their attachments on the way out.

Fault tolerance: the controller supervises worker liveness on every
pump iteration.  A dead worker is respawned against the existing
segments; if it died holding a task, the run first rolls back to an
in-memory snapshot taken at the last epoch boundary and replays the
epoch (bitwise-identical to a failure-free run at one worker,
RMSE-equivalent at several).  ``TrainingConfig.max_worker_restarts``
bounds total respawns; exhausting it raises :class:`ExecutionError`
with per-worker diagnostics.  See "Supervision and recovery" below and
DESIGN.md, "Failure model and recovery".
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Union

import numpy as np

from .. import faults
from ..config import TrainingConfig
from ..exceptions import CheckpointError, ExecutionError
from ..hardware import HeterogeneousPlatform
from ..sgd import FactorModel, rmse
from ..sgd.schedules import ConstantSchedule, LearningRateSchedule
from ..shm import SharedSegment
from ..sparse import BlockStore, SharedBlockStore, SparseRatingMatrix
from ..core.schedulers import Scheduler
from ..core.tasks import Task
from ..sim.trace import ExecutionTrace, IterationRecord, TaskRecord
from .base import (
    Engine,
    WallClockResult,
    apply_block_data,
    resolve_stopping_conditions,
)
from .session import (
    STOP_ITERATIONS,
    STOP_TARGET_RMSE,
    STOP_TIME_BUDGET,
    EngineSession,
    EpochReport,
)
from .threaded import IDLE_POLL_SECONDS

#: Seconds ``finish()`` waits for a worker to exit after its shutdown
#: sentinel before escalating to ``terminate()``.
SHUTDOWN_GRACE_SECONDS = 10.0


def process_backend_supported() -> bool:
    """Whether this platform can run the shared-memory process backend.

    Requires ``multiprocessing.shared_memory`` (CPython >= 3.8 on
    POSIX/Windows) and at least one usable process start method.
    """
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - exotic platforms only
        return False
    try:
        return bool(multiprocessing.get_all_start_methods())
    except Exception:  # pragma: no cover - defensive
        return False


def _default_start_method() -> str:
    """``fork`` where available (fast, Linux), else the platform default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


@dataclass(frozen=True)
class SharedFactorHandle:
    """Picklable descriptor of the shared factor segments.

    ``q`` is stored item-major — the segment holds a C-contiguous
    ``(n, k)`` buffer whose transpose is the usual ``(k, n)`` interface
    view — matching :class:`~repro.sgd.FactorModel`'s layout contract so
    the block-major kernel keeps its flat-scatter fast path in every
    worker.
    """

    p_name: str
    q_name: str
    n_rows: int
    n_cols: int
    latent_factors: int


def _attach_model(handle: SharedFactorHandle):
    """Map the factor segments and build a zero-copy model over them."""
    p_seg = SharedSegment.attach(handle.p_name)
    q_seg = SharedSegment.attach(handle.q_name)
    p = p_seg.ndarray((handle.n_rows, handle.latent_factors), np.float64)
    q = q_seg.ndarray((handle.n_cols, handle.latent_factors), np.float64).T
    return FactorModel.over_buffers(p, q), p_seg, q_seg


def _worker_main(
    worker_index: int,
    factors: SharedFactorHandle,
    store_handle,
    training: TrainingConfig,
    kernel_name: str,
    clock_start: float,
    task_queue,
    done_queue,
) -> None:
    """Loop of one worker process: attach, execute tasks, close.

    Messages in are ``(keys, rate, sleep_s, fault)`` — the task's
    grid-block keys, its learning rate (priced by the controller at
    dispatch), an optional GPU-latency-emulation sleep, and an optional
    injected fault action ``(mode, seconds)`` matched by the controller
    (see :mod:`repro.faults`; the controller evaluates the plan so fault
    ordinals survive worker respawns) — or ``None`` to shut down.
    Messages out are ``(worker_index, start, end, error)`` with wall
    times on the controller's clock (``CLOCK_MONOTONIC`` is system-wide
    on the platforms with a working ``fork``/``spawn``).  Completion
    tuples are far below ``PIPE_BUF``, so their pipe writes are atomic
    even when the worker is SIGKILLed mid-put: the controller sees each
    message entirely or not at all, never torn.
    """
    p_seg = q_seg = store = model = data = None
    try:
        model, p_seg, q_seg = _attach_model(factors)
        store = SharedBlockStore.attach(store_handle)
        while True:
            message = task_queue.get()
            if message is None:
                break
            keys, rate, sleep_s, fault = message
            mode = fault[0] if fault is not None else None
            if mode == "kill":
                # Die before touching the factors: the task is in flight
                # on the controller but no update was applied.
                os.kill(os.getpid(), signal.SIGKILL)
            start = time.monotonic() - clock_start
            data = store.task_data(keys)
            apply_block_data(model.p, model.q, data, rate, training, kernel_name)
            data = None
            if mode == "kill_mid":
                # Die after mutating shared factors but before reporting
                # — the hard recovery case (lost completion, dirty P/Q).
                os.kill(os.getpid(), signal.SIGKILL)
            if mode == "stall":
                time.sleep(fault[1])
            if sleep_s > 0.0:
                time.sleep(sleep_s)
            end = time.monotonic() - clock_start
            done_queue.put((worker_index, start, end, None))
            if mode == "kill_after":
                # Die *after* the completion is delivered: flush the
                # feeder thread so the controller books the task, then
                # the death is an idle death needing no rollback.
                done_queue.close()
                done_queue.join_thread()
                os.kill(os.getpid(), signal.SIGKILL)
    except BaseException:
        try:
            done_queue.put((worker_index, 0.0, 0.0, traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already torn down
            pass
    finally:
        # Drop every view pinning the segments, then detach.  The owner
        # (controller) is the only side that unlinks.
        model = data = None
        if store is not None:
            try:
                store.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        for seg in (p_seg, q_seg):
            if seg is not None:
                try:
                    seg.close()
                except Exception:  # pragma: no cover - best-effort teardown
                    pass


@dataclass
class ProcessResult(WallClockResult):
    """Outcome of one multiprocess training run (wall-clock time base)."""


class ProcessSession(EngineSession):
    """One multiprocess run, driven by the controller's completion pump.

    Unlike :class:`~repro.exec.threaded.ThreadedSession` there is no
    shared mutable state to lock: the scheduler, the trace and all
    accounting live in the controller, and workers communicate only
    through queues.  ``step()`` dispatches to free workers and consumes
    completions until an epoch boundary report is produced.
    """

    def __init__(
        self,
        engine: "ProcessEngine",
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
        pause_on_epoch: Union[bool, Callable[[int], bool]] = False,
    ) -> None:
        self._engine = engine
        self._max_iterations = resolve_stopping_conditions(
            iterations,
            target_rmse,
            max_simulated_time,
            default_iterations=engine.training.iterations,
            has_test=engine.test is not None,
            error=ExecutionError,
        )
        self._target_rmse = target_rmse
        self._max_time = max_simulated_time
        self._pause_on_epoch = pause_on_epoch

        self._total_points = engine.scheduler.total_points
        if self._total_points <= 0:
            raise ExecutionError("the scheduler's grid contains no ratings")

        self._trace = ExecutionTrace(target_rmse=target_rmse)
        self._launched = False
        self._restored = False
        self._paused = False
        self._stopping = False
        self._converged = False
        self._stop_reason: Optional[str] = None
        self._error: Optional[BaseException] = None
        self._result: Optional[ProcessResult] = None
        self._in_flight: Dict[int, Task] = {}
        self._points_completed = 0
        self._iteration = 0
        self._iteration_target = self._total_points
        self._deadline: Optional[float] = None
        self._clock_start = 0.0
        self._last_event = 0.0
        self._time_offset = 0.0
        self._reports: List[EpochReport] = []

        # Fault tolerance (see "Supervision and recovery" below).
        self._worker_restarts = 0
        self._dispatch_counts = [0] * engine.n_workers
        self._recovering = False
        self._fault_plan = None
        self._snapshot: Optional[dict] = None
        self._snapshot_stage: Optional[dict] = None

        # Pool / shared-memory state (populated by _launch).
        self._ctx = None
        self._kernel_name: Optional[str] = None
        self._factor_handle: Optional[SharedFactorHandle] = None
        self._procs: List = []
        self._task_queues: List = []
        self._done_queue = None
        self._p_seg: Optional[SharedSegment] = None
        self._q_seg: Optional[SharedSegment] = None
        self._shared_store: Optional[SharedBlockStore] = None
        self._orig_p: Optional[np.ndarray] = None
        self._orig_q: Optional[np.ndarray] = None
        self._torn_down = False

    # ------------------------------------------------------------------ #
    # Protocol surface
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> "ProcessEngine":
        return self._engine

    @property
    def epoch(self) -> int:
        return self._iteration

    @property
    def done(self) -> bool:
        if self._result is not None:
            return True
        if self._reports:
            return False
        return self._stopping or self._error is not None

    @property
    def trace(self) -> ExecutionTrace:
        return self._trace

    @property
    def backend_name(self) -> str:
        return "processes"

    @property
    def started(self) -> bool:
        return self._launched

    def stop(self, reason: str = "callback") -> None:
        if not self._stopping:
            self._stopping = True
            if self._stop_reason is None:
                self._stop_reason = reason
        self._paused = False

    def step(self) -> Optional[EpochReport]:
        if self._reports:
            return self._reports.pop(0)
        if self._result is not None or self._stopping or self._error is not None:
            return None
        if self._iteration >= self._max_iterations:
            # Only reachable on a restored session: a checkpoint taken at
            # (or past) this run's epoch cap has nothing left to do.
            self._stopping = True
            if self._stop_reason is None:
                self._stop_reason = STOP_ITERATIONS
            return None
        if not self._launched:
            self._launch()
        self._paused = False
        return self._pump_until_report()

    def finish(self) -> ProcessResult:
        if self._result is not None:
            return self._result
        if not self._stopping:
            self._stopping = True
            if self._stop_reason is None:
                # finish() before any stopping condition fired: the
                # caller is abandoning the run.
                self._stop_reason = "aborted"
        self._paused = False
        if self._launched:
            try:
                if self._error is None:
                    self._drain_in_flight()
            finally:
                self._shutdown_workers()
                self._teardown_shared()

        if self._error is not None:
            if isinstance(self._error, ExecutionError):
                raise self._error
            raise ExecutionError(  # pragma: no cover - non-Execution errors
                f"a worker process failed: {self._error!r}"
            ) from self._error

        self._trace.final_time = self._last_event
        self._result = ProcessResult(
            model=self._engine.model,
            trace=self._trace,
            converged=self._converged,
            stop_reason=self._stop_reason or STOP_ITERATIONS,
            worker_restarts=self._worker_restarts,
        )
        return self._result

    # ------------------------------------------------------------------ #
    # Checkpoint support (mirrors ThreadedSession's quiescent contract)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        if self._launched and self._in_flight:
            raise CheckpointError(
                "a process session can only be checkpointed while quiescent "
                "at an epoch boundary; start the session with "
                "pause_on_epoch=True (the Checkpoint callback does this "
                "automatically)"
            )
        if self._launched and not (self._paused or self._stopping):
            raise CheckpointError(
                "a process session can only be checkpointed while paused at "
                "an epoch boundary (pause_on_epoch=True)"
            )
        return {
            "iteration": self._iteration,
            "iteration_target": self._iteration_target,
            "points_completed": self._points_completed,
            "now": self._last_event,
            "seq": len(self._trace.tasks),
            "converged": self._converged,
            "idle_workers": [],
            "pending_dispatch": None,
            "in_flight": [],
            "pending_reports": [report.to_state() for report in self._reports],
        }

    def load_state_dict(self, state: dict) -> None:
        if self._launched:
            raise CheckpointError(
                "session state can only be restored before the first step()"
            )
        if state["in_flight"]:
            raise CheckpointError(
                "this checkpoint carries simulated in-flight tasks (it was "
                "captured from a multi-worker simulator run); resume it on "
                'the "simulate" backend'
            )
        self._restored = True
        self._iteration = int(state["iteration"])
        self._iteration_target = int(state["iteration_target"])
        self._points_completed = int(state["points_completed"])
        self._converged = bool(state["converged"])
        self._time_offset = float(state["now"])
        self._last_event = float(state["now"])
        self._reports = [
            EpochReport.from_state(report) for report in state["pending_reports"]
        ]

    # ------------------------------------------------------------------ #
    # Launch / teardown
    # ------------------------------------------------------------------ #
    def _launch(self) -> None:
        from ..sgd.kernels import resolve_kernel_name

        engine = self._engine
        self._launched = True
        if not self._restored:
            engine.scheduler.start_iteration()
        try:
            self._factor_handle = self._setup_shared_factors()
            self._shared_store = engine._store.to_shared(
                engine.scheduler.grid.iter_blocks()
            )
            self._clock_start = time.monotonic() - self._time_offset
            if self._max_time is not None:
                self._deadline = self._clock_start + self._max_time

            self._ctx = multiprocessing.get_context(engine.start_method)
            self._done_queue = self._ctx.Queue()
            self._kernel_name = resolve_kernel_name(
                engine.training.kernel, exact_kernel=engine.exact_kernel
            )
            self._fault_plan = faults.active_plan()
            for index in range(engine.n_workers):
                self._spawn_worker(index)
            # The recovery baseline before any task is dispatched: a
            # worker death in the first epoch rolls back to here.
            self._stage_recovery_snapshot()
            self._finalize_recovery_snapshot()
        except BaseException:
            # A failed launch must not leak segments or processes.
            self._stopping = True
            self._shutdown_workers()
            self._teardown_shared()
            raise

    def _spawn_worker(self, index: int) -> None:
        """Start (or restart) worker ``index`` over the existing segments.

        A respawned worker always gets a **fresh** task queue: any
        message sitting undelivered in the dead worker's queue belongs
        to a task that recovery has already rolled back, and must never
        reach the replacement.
        """
        engine = self._engine
        task_queue = self._ctx.SimpleQueue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                self._factor_handle,
                self._shared_store.handle,
                engine.training,
                self._kernel_name,
                self._clock_start,
                task_queue,
                self._done_queue,
            ),
            name=f"repro-exec-proc-{index}",
            daemon=True,
        )
        proc.start()
        if index < len(self._procs):
            self._procs[index].join(timeout=5.0)  # reap the dead child
            old_queue = self._task_queues[index]
            try:
                old_queue.close()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
            self._task_queues[index] = task_queue
            self._procs[index] = proc
        else:
            self._task_queues.append(task_queue)
            self._procs.append(proc)

    def _setup_shared_factors(self) -> SharedFactorHandle:
        """Move the engine's factor matrices into shared segments.

        The engine's :class:`FactorModel` object keeps its identity —
        its ``p``/``q`` attributes are re-pointed at the shared views, so
        callbacks and RMSE evaluation observe live worker updates — and
        the original private arrays are kept to copy the final factors
        back into before the segments are unlinked.
        """
        model = self._engine.model
        m, k = model.p.shape
        n = model.q.shape[1]
        self._p_seg, p_view = SharedSegment.from_array(model.p, purpose="p")
        # Item-major, preserving the layout contract.
        self._q_seg, q_buf = SharedSegment.from_array(model.q.T, purpose="q")
        self._orig_p, self._orig_q = model.p, model.q
        model.p = p_view
        model.q = q_buf.T
        return SharedFactorHandle(
            p_name=self._p_seg.name,
            q_name=self._q_seg.name,
            n_rows=m,
            n_cols=n,
            latent_factors=k,
        )

    def _teardown_shared(self) -> None:
        """Copy factors out of shared memory and unlink every segment.

        Runs exactly once (guarded), on every exit path — normal finish,
        worker death, callback exception — so no ``/dev/shm`` segment
        outlives the session.
        """
        if self._torn_down:
            return
        self._torn_down = True
        model = self._engine.model
        if self._orig_p is not None:
            self._orig_p[...] = model.p
            self._orig_q[...] = model.q
            model.p = self._orig_p
            model.q = self._orig_q
            self._orig_p = self._orig_q = None
        if self._shared_store is not None:
            self._shared_store.unlink()
            self._shared_store = None
        for seg_attr in ("_p_seg", "_q_seg"):
            seg = getattr(self, seg_attr)
            if seg is not None:
                seg.unlink()
                setattr(self, seg_attr, None)

    def _shutdown_workers(self) -> None:
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:  # pragma: no cover - broken pipe on dead child
                pass
        deadline = time.monotonic() + SHUTDOWN_GRACE_SECONDS
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join()
        self._procs = []
        for task_queue in self._task_queues:
            try:
                task_queue.close()
            except Exception:  # pragma: no cover
                pass
        self._task_queues = []
        if self._done_queue is not None:
            try:
                self._done_queue.close()
                self._done_queue.join_thread()
            except Exception:  # pragma: no cover
                pass
            self._done_queue = None

    # ------------------------------------------------------------------ #
    # Controller pump
    # ------------------------------------------------------------------ #
    def _should_pause(self, epoch: int) -> bool:
        if callable(self._pause_on_epoch):
            return bool(self._pause_on_epoch(epoch))
        return bool(self._pause_on_epoch)

    def _elapsed_deadline(self) -> bool:
        if self._deadline is not None and time.monotonic() > self._deadline:
            self._stopping = True
            if self._stop_reason is None:
                self._stop_reason = STOP_TIME_BUDGET
            return True
        return False

    def _pump_until_report(self) -> Optional[EpochReport]:
        while True:
            if self._error is not None:
                return None
            # Supervision: check *every* worker's liveness on *every*
            # pump iteration, before dispatching — a worker that died
            # idle would otherwise never produce the completion the
            # blocking read waits for, and a dead worker must not be
            # handed a task.
            self._ensure_workers_alive()
            if self._error is not None:
                return None
            if not self._paused and not self._stopping:
                self._dispatch_free_workers()
            if self._reports:
                if self._paused:
                    # Quiesce: the boundary asked for a pause, so drain
                    # the in-flight remainder before handing control to
                    # the caller (checkpoints need a still run).
                    self._drain_in_flight()
                return self._reports.pop(0)
            if self._stopping:
                return None
            if not self._in_flight:
                # Nobody holds a task and dispatch produced none: no
                # future completion can unblock us (mirrors the
                # simulator's and thread pool's all-idle check).
                self._error = ExecutionError(
                    "all workers are idle with work remaining; the grid or "
                    "quota configuration cannot make progress"
                )
                return None
            self._await_completion(block=True)

    def _dispatch_free_workers(self) -> None:
        engine = self._engine
        if self._recovering:
            # A booking drained during recovery may cross an epoch
            # boundary, whose re-dispatch would hand tasks to workers
            # that are being replaced; recovery re-dispatches via the
            # pump once the pool is whole again.
            return
        if self._elapsed_deadline():
            return
        for worker_index in range(engine.n_workers):
            if worker_index in self._in_flight:
                continue
            task = engine.scheduler.next_task(worker_index)
            if task is None:
                continue
            self._in_flight[worker_index] = task
            rate = engine.schedule(self._iteration)
            sleep_s = engine._gpu_sleep_seconds(worker_index, task)
            keys = tuple(
                (int(block.row_band), int(block.col_band)) for block in task.blocks
            )
            # Fault injection is controller-evaluated: the per-worker
            # dispatch ordinal lives here and survives respawns, so an
            # injected kill fires exactly once instead of re-firing
            # every time the replacement worker starts counting anew.
            ordinal = self._dispatch_counts[worker_index]
            self._dispatch_counts[worker_index] += 1
            fault = None
            if self._fault_plan is not None:
                spec = self._fault_plan.take(
                    "worker.task", worker=worker_index, ordinal=ordinal
                )
                if spec is not None:
                    fault = (spec.mode, spec.seconds)
            self._task_queues[worker_index].put((keys, rate, sleep_s, fault))

    def _await_completion(self, block: bool) -> None:
        """Consume completion messages, booking each (non-blocking drain
        after an optional blocking first read)."""
        first = True
        while True:
            try:
                if first and block:
                    message = self._done_queue.get(timeout=IDLE_POLL_SECONDS)
                else:
                    message = self._done_queue.get_nowait()
            except queue.Empty:
                if first and block:
                    self._elapsed_deadline()
                    self._ensure_workers_alive()
                return
            first = False
            worker_index, start, end, error = message
            if error is not None:
                task = self._in_flight.pop(worker_index, None)
                if task is not None:
                    self._engine.scheduler.abort_task(task)
                self._error = ExecutionError(
                    f"worker process {worker_index} failed:\n{error}"
                )
                return
            self._book_completion(worker_index, start, end)

    # ------------------------------------------------------------------ #
    # Supervision and recovery
    # ------------------------------------------------------------------ #
    # A worker process can die at any moment (OOM kill, segfault in a
    # native kernel, injected SIGKILL).  The controller recovers by
    # rolling the run back to a cheap in-memory snapshot taken at every
    # epoch boundary — factor copies plus scheduler state — and
    # replaying the epoch with respawned workers.  With one worker the
    # replay re-issues the identical task sequence over the identical
    # factors, so a recovered run is bitwise-identical to a
    # failure-free one (pinned by the chaos suite); with several
    # workers in-flight kernels make the boundary snapshot inexact and
    # recovery is RMSE-equivalent instead.  A worker that died *idle*
    # (its completion already booked, nothing in flight) is respawned
    # without any rollback.

    def _stage_recovery_snapshot(self) -> None:
        """Capture factors + scheduler state at an epoch boundary.

        Called right after ``start_iteration()`` and *before* freed
        workers are re-dispatched, so the scheduler state predates any
        next-epoch decisions.  ``state_dict()`` returns fresh arrays
        and ``load_state_dict`` copies scalars out of them, so one
        snapshot survives any number of rollbacks.
        """
        model = self._engine.model
        self._snapshot_stage = {
            "p": np.array(model.p, copy=True),
            "q": np.array(model.q, copy=True),
            "scheduler": self._engine.scheduler.state_dict(),
        }

    def _finalize_recovery_snapshot(self) -> None:
        """Seal the staged snapshot with counters and trace lengths.

        Runs at the *end* of boundary processing, after the boundary's
        iteration record is written — a rollback must keep that record
        (it describes the epoch being rolled back *to*, and would never
        be regenerated).
        """
        snapshot = self._snapshot_stage
        self._snapshot_stage = None
        snapshot.update(
            iteration=self._iteration,
            iteration_target=self._iteration_target,
            points_completed=self._points_completed,
            converged=self._converged,
            n_tasks=len(self._trace.tasks),
            n_iterations=len(self._trace.iterations),
        )
        self._snapshot = snapshot

    def _restore_recovery_snapshot(self) -> None:
        """Roll the run back to the last epoch boundary.

        Preconditions: ``self._in_flight`` is empty and every held band
        lock has been released via ``abort_task`` — lock occupancy is
        not part of scheduler state (it is implied by in-flight tasks),
        so restoring under held locks would wedge the replay.
        ``self._reports`` is deliberately untouched: already-produced
        reports describe boundaries at or before the snapshot and must
        not be re-delivered or dropped.  ``_last_event`` is wall-clock
        and keeps advancing through a rollback.
        """
        snapshot = self._snapshot
        model = self._engine.model
        model.p[...] = snapshot["p"]
        model.q[...] = snapshot["q"]
        self._engine.scheduler.load_state_dict(snapshot["scheduler"])
        self._iteration = int(snapshot["iteration"])
        self._iteration_target = int(snapshot["iteration_target"])
        self._points_completed = int(snapshot["points_completed"])
        self._converged = bool(snapshot["converged"])
        del self._trace.tasks[snapshot["n_tasks"] :]
        del self._trace.iterations[snapshot["n_iterations"] :]

    def _dead_workers(self) -> Set[int]:
        return {
            index for index, proc in enumerate(self._procs) if not proc.is_alive()
        }

    def _ensure_workers_alive(self) -> None:
        """Detect dead workers and recover (or fail) the run."""
        if self._error is not None or not self._procs:
            return
        dead = self._dead_workers()
        if dead:
            self._recover_dead_workers(dead)

    def _fail_restart_budget(self, dead: Set[int]) -> None:
        budget = self._engine.training.max_worker_restarts
        details = "; ".join(
            f"worker {index} (pid {self._procs[index].pid}, exit code "
            f"{self._procs[index].exitcode})"
            for index in sorted(dead)
        )
        for worker_index in list(self._in_flight):
            self._engine.scheduler.abort_task(self._in_flight.pop(worker_index))
        self._error = ExecutionError(
            f"{details} died at epoch {self._iteration} and the worker "
            f"restart budget is exhausted ({self._worker_restarts} of "
            f"{budget} restart(s) used); raise "
            f"TrainingConfig.max_worker_restarts to tolerate more failures"
        )

    def _drain_done_messages(self) -> None:
        """Book every already-delivered completion, without blocking.

        Completion writes are atomic (< ``PIPE_BUF``), so once a worker
        is observably dead its final message is either fully readable
        now or was never sent.  Booking first turns died-after-reporting
        into an idle death needing no rollback.
        """
        while True:
            try:
                message = self._done_queue.get_nowait()
            except queue.Empty:
                return
            worker_index, start, end, error = message
            if error is not None:
                task = self._in_flight.pop(worker_index, None)
                if task is not None:
                    self._engine.scheduler.abort_task(task)
                self._error = ExecutionError(
                    f"worker process {worker_index} failed:\n{error}"
                )
                return
            self._book_completion(worker_index, start, end)

    def _recover_dead_workers(self, dead: Set[int]) -> None:
        """Recover from dead workers by replacing the **whole pool**.

        The done queue is one ``multiprocessing.Queue`` shared by every
        worker, and its put side is serialised by a shared write lock.
        A worker SIGKILLed inside a put — including the window *after*
        the pipe write (the controller can already read the message)
        but *before* the lock release — leaves that lock held forever,
        silently deadlocking every later put by any worker, respawned
        or surviving.  After any death the queue is therefore suspect
        and is replaced wholesale, which forces replacing the whole
        pool: survivors hold the old queue, so they are killed and
        respawned too (they are stateless kernel executors; only their
        in-flight work matters, and that is rolled back and replayed).

        The sequence:

        1. **Book** completions already delivered on the old queue —
           their pipe writes are atomic (< ``PIPE_BUF``), so each is
           fully readable or was never sent.  Booking first turns
           died-after-reporting into an idle death needing no rollback.
        2. Check the restart budget — only workers that died on their
           own count against it, never the survivors the controller
           kills below.
        3. If any task is still in flight (on a dead worker *or* a
           survivor about to be killed), abort them all — releasing
           their band locks — and roll back to the last epoch-boundary
           snapshot; the replay re-issues them.  Torn factor writes
           from kernels killed mid-update are erased by the snapshot
           restore, which rewrites every factor byte.
        4. Kill the survivors, swap in a fresh done queue, respawn the
           full pool over fresh task queues.
        """
        engine = self._engine
        budget = engine.training.max_worker_restarts
        self._recovering = True
        try:
            self._drain_done_messages()
            if self._error is not None:
                return
            dead = dead | self._dead_workers()
            if self._worker_restarts + len(dead) > budget:
                self._fail_restart_budget(dead)
                return
            for proc in self._procs:
                if proc.is_alive():
                    proc.kill()
            deadline = time.monotonic() + SHUTDOWN_GRACE_SECONDS
            for proc in self._procs:
                proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if self._in_flight:
                for worker_index in list(self._in_flight):
                    engine.scheduler.abort_task(self._in_flight.pop(worker_index))
                self._restore_recovery_snapshot()
            old_queue, self._done_queue = self._done_queue, self._ctx.Queue()
            try:
                # The controller never put to the old queue, so there is
                # no feeder to flush; close just drops the pipe ends.
                old_queue.close()
                old_queue.join_thread()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
            for index in range(engine.n_workers):
                self._spawn_worker(index)
            self._worker_restarts += len(dead)
        finally:
            self._recovering = False

    def _book_completion(self, worker_index: int, start: float, end: float) -> None:
        engine = self._engine
        task = self._in_flight.pop(worker_index, None)
        if task is None:  # pragma: no cover - defensive
            raise ExecutionError(
                f"completion from worker {worker_index} with no task in flight"
            )
        engine.scheduler.complete_task(task)
        self._points_completed += task.nnz
        self._last_event = max(self._last_event, end)
        self._trace.record_task(
            TaskRecord(
                worker_index=worker_index,
                is_gpu=engine.scheduler.is_gpu_worker(worker_index),
                start_time=start,
                end_time=end,
                points=task.nnz,
                n_blocks=len(task.blocks),
                stolen=task.stolen,
                iteration=self._iteration,
            )
        )
        self._elapsed_deadline()
        while (
            self._points_completed >= self._iteration_target and not self._stopping
        ):
            self._process_boundary()

    def _process_boundary(self) -> None:
        """Advance one epoch boundary (same accounting as the other
        backends: counters and quota reset first, then RMSE).

        With several workers the freed ones are re-dispatched *before*
        the RMSE evaluation so they crunch the next epoch while the
        controller scores this one — the threaded backend's behaviour,
        and equally well-defined because in-flight kernels only touch
        bands the evaluation would race with anyway.  With one worker
        the evaluation runs first: the run is then fully quiescent at
        the boundary, which is what makes 1-worker runs bitwise-identical
        to the serial simulator.
        """
        engine = self._engine
        index = self._iteration
        points = self._points_completed
        stamp = self._last_event
        self._iteration += 1
        self._iteration_target += self._total_points
        engine.scheduler.start_iteration()
        # Stage the recovery snapshot before any next-epoch dispatch:
        # with one worker the run is quiescent here, so the snapshot is
        # exact (the bitwise rollback-replay guarantee); with several,
        # still-running kernels make it approximate (RMSE-equivalent).
        self._stage_recovery_snapshot()
        pause_here = self._should_pause(index)
        if pause_here:
            self._paused = True
        elif engine.n_workers > 1 and not self._paused:
            self._dispatch_free_workers()

        test_rmse = rmse(engine.model, engine.test) if engine.test is not None else None
        train_rmse = (
            rmse(engine.model, engine.train) if engine.compute_train_rmse else None
        )
        self._trace.record_iteration(
            IterationRecord(
                iteration=index,
                simulated_time=stamp,
                train_rmse=train_rmse,
                test_rmse=test_rmse,
                points_processed=points,
            )
        )
        if self._target_rmse is not None and test_rmse is not None:
            if test_rmse <= self._target_rmse:
                self._converged = True
                self._trace.target_reached_at = stamp
                self._stopping = True
                if self._stop_reason is None:
                    self._stop_reason = STOP_TARGET_RMSE
        if self._iteration >= self._max_iterations and not self._stopping:
            self._stopping = True
            if self._stop_reason is None:
                self._stop_reason = STOP_ITERATIONS
        self._reports.append(
            EpochReport(
                epoch=index,
                engine_time=stamp,
                train_rmse=train_rmse,
                test_rmse=test_rmse,
                points_processed=points,
                converged=self._converged,
            )
        )
        self._finalize_recovery_snapshot()

    def _drain_in_flight(self) -> None:
        """Book every outstanding completion (no new dispatch).

        The grace deadline is *per completion*: as long as workers keep
        finishing tasks the drain waits indefinitely (a task is allowed
        to be long — GPU-latency emulation sleeps, loaded machines);
        only a full grace period with zero progress and every worker
        still alive is treated as a wedge.
        """
        grace = time.monotonic() + SHUTDOWN_GRACE_SECONDS
        while self._in_flight and self._error is None:
            outstanding = len(self._in_flight)
            self._await_completion(block=True)
            if len(self._in_flight) < outstanding:
                grace = time.monotonic() + SHUTDOWN_GRACE_SECONDS
                continue
            if time.monotonic() > grace and self._in_flight:
                self._ensure_workers_alive()
                if self._error is None and self._in_flight:
                    # pragma: no cover - wedged worker
                    for worker_index in list(self._in_flight):
                        self._engine.scheduler.abort_task(
                            self._in_flight.pop(worker_index)
                        )
                    self._error = ExecutionError(
                        "in-flight tasks did not complete within the "
                        "shutdown grace period"
                    )


class ProcessEngine(Engine):
    """Runs a scheduler with a pool of worker *processes* over shared memory.

    The drop-in multicore sibling of :class:`ThreadedEngine`: same
    construction surface, same session protocol, same trace output —
    but the workers are OS processes updating
    ``multiprocessing.shared_memory``-backed factor matrices, so the SGD
    kernels run genuinely in parallel instead of contending for the GIL.

    Parameters
    ----------
    scheduler:
        The block scheduler to execute; one worker process is created
        per scheduler worker.
    train:
        Training ratings (materialised block-major into shared memory at
        launch; see :meth:`repro.sparse.BlockStore.to_shared`).
    training:
        Hyper-parameters (``k``, ``gamma``, ``lambda``, batch size).
    test:
        Optional held-out ratings for RMSE curves and target stopping.
    model:
        Optional pre-initialised factor model.  Its arrays are copied
        into shared segments for the run and the final factors are
        copied back when the session finishes.
    schedule:
        Learning-rate schedule; constant by default.  Rates are priced
        by the controller at dispatch, so the schedule never crosses the
        process boundary.
    platform:
        Optional simulated platform; only consulted for
        ``gpu_latency_scale``.
    exact_kernel:
        Use the exact per-rating kernel (slow; for small validation runs).
    compute_train_rmse:
        Also record training RMSE at iteration boundaries.
    gpu_latency_scale:
        As in :class:`ThreadedEngine`: make "GPU" workers sleep for this
        fraction of their simulated device time per task.
    use_block_store:
        Must remain ``True``: the shared-memory data plane *is* how
        rating data reaches the workers.  (The legacy gather-per-task
        path would mean pickling index arrays per task — the copy tax
        this backend exists to kill.)
    start_method:
        ``multiprocessing`` start method (``"fork"`` where available by
        default; ``"spawn"`` and ``"forkserver"`` also work — workers
        attach all state by segment name, nothing relies on inheritance).
    """

    backend_name = "processes"

    def __init__(
        self,
        scheduler: Scheduler,
        train: SparseRatingMatrix,
        training: TrainingConfig,
        test: Optional[SparseRatingMatrix] = None,
        model: Optional[FactorModel] = None,
        schedule: Optional[LearningRateSchedule] = None,
        platform: Optional[HeterogeneousPlatform] = None,
        exact_kernel: bool = False,
        compute_train_rmse: bool = False,
        gpu_latency_scale: float = 0.0,
        use_block_store: bool = True,
        start_method: Optional[str] = None,
    ) -> None:
        if not process_backend_supported():  # pragma: no cover - exotic platforms
            raise ExecutionError(
                "this platform does not support the shared-memory process "
                'backend; use backend="threads"'
            )
        if platform is not None and platform.n_workers != scheduler.n_workers:
            raise ExecutionError(
                f"platform has {platform.n_workers} workers but the scheduler "
                f"expects {scheduler.n_workers}"
            )
        if gpu_latency_scale < 0:
            raise ExecutionError(
                f"gpu_latency_scale must be >= 0, got {gpu_latency_scale}"
            )
        if gpu_latency_scale > 0 and platform is None:
            raise ExecutionError("gpu_latency_scale needs a platform for timing")
        if not use_block_store:
            raise ExecutionError(
                'the "processes" backend requires the block-major data plane '
                "(its shared-memory segments are the only zero-copy channel "
                "for rating data); use the threads backend to benchmark the "
                "legacy gather path"
            )
        if start_method is not None:
            if start_method not in multiprocessing.get_all_start_methods():
                raise ExecutionError(
                    f"start_method must be one of "
                    f"{multiprocessing.get_all_start_methods()}, got "
                    f"{start_method!r}"
                )
        self.scheduler = scheduler
        self.train = train
        self.test = test
        self.training = training
        self.model = model or FactorModel.for_matrix(train, training)
        self.schedule = schedule or ConstantSchedule(training.learning_rate)
        self.platform = platform
        self.exact_kernel = exact_kernel
        self.compute_train_rmse = compute_train_rmse
        self.gpu_latency_scale = gpu_latency_scale
        self.start_method = start_method or _default_start_method()
        self.n_workers = scheduler.n_workers
        self._store = BlockStore(train)
        self._started = False

    def _gpu_sleep_seconds(self, worker_index: int, task: Task) -> float:
        """Latency-emulation sleep for a GPU worker's task (0 for CPUs)."""
        if (
            self.gpu_latency_scale <= 0
            or self.platform is None
            or not self.scheduler.is_gpu_worker(worker_index)
        ):
            return 0.0
        device = self.platform.all_devices[task.worker_index]
        work = task.block_work(self.training.latent_factors)
        return device.process_time(work) * self.gpu_latency_scale

    # ------------------------------------------------------------------ #
    # Session protocol
    # ------------------------------------------------------------------ #
    def start(
        self,
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
        pause_on_epoch: Union[bool, Callable[[int], bool]] = False,
    ) -> ProcessSession:
        """Begin a stepwise multiprocess run (see :class:`ProcessSession`).

        ``max_simulated_time`` bounds *wall-clock* seconds for this
        backend; the parameter keeps its protocol name so callers can
        switch backends without changing call sites.
        """
        if self._started:
            raise ExecutionError("a ProcessEngine can only be run once")
        self._started = True
        return ProcessSession(
            self,
            iterations=iterations,
            target_rmse=target_rmse,
            max_simulated_time=max_simulated_time,
            pause_on_epoch=pause_on_epoch,
        )
