"""The stepwise training-session protocol.

``Engine.run()`` used to be an opaque call: the whole online phase
(Algorithm 2) ran to completion inside one function and every stopping
rule had to be baked into both engines.  The session protocol opens the
loop at its natural grain — the epoch, whose per-iteration RMSE/time
trajectory *is* the paper's evaluation (Figure 12, Table III)::

    session = engine.start(iterations=10)
    while (report := session.step()) is not None:
        ...                      # observe, checkpoint, or session.stop()
    result = session.finish()

* :meth:`EngineSession.step` advances the engine until the next epoch
  boundary and returns an :class:`EpochReport`, or ``None`` once no
  further epoch will complete;
* :meth:`EngineSession.stop` requests a graceful stop at the next
  opportunity (used by callbacks such as early stopping);
* :meth:`EngineSession.finish` releases in-flight work and produces the
  same :class:`~repro.exec.base.EngineResult` the old ``run()`` returned.

``run()`` itself is now a thin loop over this protocol
(:func:`run_session`), so the single-call API is unchanged while
observation, early stopping, checkpointing and resumption
(:mod:`repro.exec.callbacks`, :mod:`repro.exec.checkpoint`) all build on
``step()`` without touching the engines' numerics.

Step boundaries are epoch boundaries on purpose: an epoch boundary is
where both engines already synchronise their accounting (quota reset,
RMSE evaluation), so pausing there observes the band-lock guarantee and
preserves the 1-worker sim-parity contract — the sequence of scheduler
decisions and kernel calls of a stepped run is identical to an
uninterrupted one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.schedulers import Scheduler
    from ..sgd import FactorModel
    from ..sim.trace import ExecutionTrace
    from .base import EngineResult


#: ``stop_reason`` values produced by the engines themselves.
STOP_ITERATIONS = "iterations"
STOP_TARGET_RMSE = "target_rmse"
STOP_TIME_BUDGET = "time_budget"
STOP_CALLBACK = "callback"


@dataclass(frozen=True)
class EpochReport:
    """What a session reports at one epoch boundary.

    Attributes
    ----------
    epoch:
        0-based index of the epoch that just completed.
    engine_time:
        Engine seconds at the boundary — simulated seconds for the
        ``"simulate"`` backend, wall-clock seconds for ``"threads"``.
    train_rmse:
        Training RMSE at the boundary (``None`` unless the engine was
        asked to compute it).
    test_rmse:
        Test RMSE at the boundary (``None`` without a test set).
    points_processed:
        Cumulative ratings processed since the start of the run.
    converged:
        Whether the target RMSE (if any) has been reached by this epoch.
    """

    epoch: int
    engine_time: float
    train_rmse: Optional[float]
    test_rmse: Optional[float]
    points_processed: int
    converged: bool = False

    def to_state(self) -> dict:
        """Plain JSON-able form, used by session/checkpoint serialization."""
        return {
            "epoch": self.epoch,
            "engine_time": self.engine_time,
            "train_rmse": self.train_rmse,
            "test_rmse": self.test_rmse,
            "points_processed": self.points_processed,
            "converged": self.converged,
        }

    @classmethod
    def from_state(cls, state: dict) -> "EpochReport":
        """Inverse of :meth:`to_state`."""
        return cls(**state)


class EngineSession(ABC):
    """One in-progress training run, advanced epoch by epoch.

    Sessions are single-use and stateful: obtain one from
    :meth:`Engine.start`, drive it with :meth:`step` and close it with
    :meth:`finish`.  Between ``step()`` calls the run is paused at an
    epoch boundary (the simulator inherently; the threaded backend when
    started with ``pause_on_epoch=True``), which is the only state a
    checkpoint may capture.
    """

    @property
    @abstractmethod
    def engine(self):
        """The engine this session belongs to."""

    @property
    @abstractmethod
    def epoch(self) -> int:
        """Number of epochs completed so far."""

    @property
    @abstractmethod
    def done(self) -> bool:
        """Whether the run has ended (no further ``step()`` will report)."""

    @property
    def model(self) -> "FactorModel":
        """The factor model being trained (shared with the engine)."""
        return self.engine.model

    @property
    def scheduler(self) -> "Scheduler":
        """The scheduler driving the run (shared with the engine)."""
        return self.engine.scheduler

    @property
    @abstractmethod
    def trace(self) -> "ExecutionTrace":
        """The execution trace recorded so far."""

    @abstractmethod
    def step(self) -> Optional[EpochReport]:
        """Advance to the next epoch boundary.

        Returns the report of the epoch that completed, or ``None`` when
        the run is over (stopping condition met, :meth:`stop` requested,
        or no work remains).  Calling ``step()`` after ``None`` keeps
        returning ``None``.
        """

    @abstractmethod
    def stop(self, reason: str = STOP_CALLBACK) -> None:
        """Request a graceful stop; the next ``step()`` returns ``None``.

        ``reason`` becomes the result's ``stop_reason``.
        """

    @abstractmethod
    def finish(self) -> "EngineResult":
        """End the run, release in-flight work and build the result.

        Idempotent: repeated calls return the same result object.
        """

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def backend_name(self) -> str:
        """Registry name of the backend that produced this session."""

    @property
    @abstractmethod
    def started(self) -> bool:
        """Whether the session has begun executing (first ``step()`` ran)."""

    @abstractmethod
    def state_dict(self) -> dict:
        """Serializable engine-loop state at the current epoch boundary.

        Together with the factor matrices, the scheduler state and the
        trace (all captured by
        :class:`~repro.exec.checkpoint.TrainCheckpoint`), this is
        everything needed to resume the run exactly where it paused.
        """

    @abstractmethod
    def load_state_dict(self, state: dict) -> None:
        """Restore engine-loop state; only valid before the first ``step()``."""


def run_session(session: EngineSession, callbacks=None) -> "EngineResult":
    """Drive a session to completion, invoking callbacks at each epoch.

    This is the loop behind every ``run()`` and
    :meth:`~repro.core.trainer.HeterogeneousTrainer.fit`: step, hand the
    report to the callbacks, honour a ``STOP`` decision, finish.
    """
    from .callbacks import STOP, CallbackList

    callback_list = callbacks if isinstance(callbacks, CallbackList) else CallbackList(callbacks)
    try:
        callback_list.on_train_begin(session)
        while True:
            report = session.step()
            if report is None:
                break
            if callback_list.on_epoch_end(report, session) is STOP:
                session.stop()
        result = session.finish()
    except BaseException:
        # A failing callback, step or finish must not leave the run
        # alive — the threaded backend's workers would keep mutating the
        # model after the caller's fit() has raised — and callbacks get
        # one (best-effort) chance to release their resources.  The
        # original exception wins over any secondary teardown failure.
        session.stop(reason="error")
        try:
            session.finish()
        except Exception:
            pass
        try:
            callback_list.on_train_end(None)
        except Exception:
            pass
        raise
    callback_list.on_train_end(result)
    return result
