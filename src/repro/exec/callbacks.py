"""Epoch-boundary callbacks for training sessions.

A callback observes a run at every epoch boundary through
:meth:`Callback.on_epoch_end` and may end it early by returning
:data:`STOP`.  Callbacks are accepted by
:meth:`~repro.core.trainer.HeterogeneousTrainer.fit`,
:func:`~repro.core.trainer.factorize` and every ``Engine.run`` via the
``callbacks=`` argument; the built-ins cover the common production
needs:

* :class:`EarlyStopping` — stop when the monitored RMSE stops improving;
* :class:`Checkpoint` — periodically persist a resumable
  :class:`~repro.exec.checkpoint.TrainCheckpoint`;
* :class:`JsonlLogger` — append one JSON line per epoch (RMSE/time
  trajectory, i.e. the raw material of Figure 12);
* :class:`TimeBudget` — stop after a wall-clock budget, regardless of
  backend time semantics.

Callbacks run on the controller side of the session protocol, never
inside worker threads, so they can do I/O freely; a callback that
mutates the factor matrices voids the bitwise-resume guarantee.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Iterable, List, Optional

from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import EngineResult
    from .session import EngineSession, EpochReport


class _Decision:
    """Sentinel decision values returned by ``on_epoch_end``."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Keep training (also conveyed by returning ``None``).
CONTINUE = _Decision("CONTINUE")
#: Stop training gracefully at this epoch boundary.
STOP = _Decision("STOP")


class Callback:
    """Base class of epoch-boundary callbacks.

    Subclasses override any of the three hooks; all default to no-ops.
    ``on_epoch_end`` may return :data:`STOP` to end the run (anything
    else — including ``None`` — continues).
    """

    #: Whether this callback needs the engine paused (quiescent) at some
    #: epoch boundaries.  The simulator pauses inherently; the threaded
    #: backend only drains its in-flight tasks at boundaries when some
    #: callback requires it (checkpointing does — a checkpoint captured
    #: mid-flight would not be resumable).  Which boundaries actually
    #: pause is refined per epoch by :meth:`pause_at`.
    requires_pause: bool = False

    def pause_at(self, epoch: int) -> bool:
        """Whether the 0-based ``epoch``'s boundary must be quiescent.

        Only consulted when :attr:`requires_pause` is set; the default
        pauses every boundary.  Periodic callbacks override this so the
        threaded pool is not drained at boundaries they will ignore.
        """
        return self.requires_pause

    def on_train_begin(self, session: "EngineSession") -> None:
        """Called once, before the first epoch of the run."""

    def on_epoch_end(
        self, report: "EpochReport", session: "EngineSession"
    ) -> Optional[_Decision]:
        """Called at every epoch boundary with that epoch's report."""
        return CONTINUE

    def on_train_end(self, result: Optional["EngineResult"]) -> None:
        """Called once, after the session finished.

        ``result`` is ``None`` when the run failed (a callback, step or
        finish raised) — implementations should release their resources
        either way.
        """


class CallbackList(Callback):
    """Compose callbacks; ``STOP`` wins if any member requests it."""

    def __init__(self, callbacks: Optional[Iterable[Callback]] = None) -> None:
        if callbacks is None:
            callbacks = ()
        elif isinstance(callbacks, Callback):
            callbacks = (callbacks,)
        self.callbacks: List[Callback] = list(callbacks)
        for callback in self.callbacks:
            if not isinstance(callback, Callback):
                raise ConfigurationError(
                    f"callbacks must be Callback instances, got {callback!r}"
                )

    @property
    def requires_pause(self) -> bool:  # type: ignore[override]
        return any(callback.requires_pause for callback in self.callbacks)

    def pause_at(self, epoch: int) -> bool:
        return any(
            callback.requires_pause and callback.pause_at(epoch)
            for callback in self.callbacks
        )

    def on_train_begin(self, session: "EngineSession") -> None:
        for callback in self.callbacks:
            callback.on_train_begin(session)

    def on_epoch_end(
        self, report: "EpochReport", session: "EngineSession"
    ) -> Optional[_Decision]:
        decision = CONTINUE
        for callback in self.callbacks:
            if callback.on_epoch_end(report, session) is STOP:
                decision = STOP
        return decision

    def on_train_end(self, result: "EngineResult") -> None:
        for callback in self.callbacks:
            callback.on_train_end(result)


class EarlyStopping(Callback):
    """Stop when the monitored RMSE stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive epochs without an improvement of at least
        ``min_delta`` after which the run is stopped.
    min_delta:
        Minimum RMSE decrease that counts as an improvement.
    monitor:
        ``"test_rmse"`` (default) or ``"train_rmse"``.  Monitoring the
        training RMSE requires the engine to compute it
        (``compute_train_rmse=True``).
    """

    def __init__(
        self,
        patience: int = 3,
        min_delta: float = 0.0,
        monitor: str = "test_rmse",
    ) -> None:
        if patience <= 0:
            raise ConfigurationError(f"patience must be positive, got {patience}")
        if min_delta < 0:
            raise ConfigurationError(f"min_delta must be >= 0, got {min_delta}")
        if monitor not in ("test_rmse", "train_rmse"):
            raise ConfigurationError(
                f'monitor must be "test_rmse" or "train_rmse", got {monitor!r}'
            )
        self.patience = patience
        self.min_delta = min_delta
        self.monitor = monitor
        self.best: Optional[float] = None
        self.stale_epochs = 0
        self.stopped_at: Optional[int] = None

    def on_train_begin(self, session: "EngineSession") -> None:
        self.best = None
        self.stale_epochs = 0
        self.stopped_at = None

    def on_epoch_end(self, report, session) -> Optional[_Decision]:
        value = getattr(report, self.monitor)
        if value is None:
            raise ConfigurationError(
                f"EarlyStopping monitors {self.monitor!r} but the report has "
                "no such metric; pass a test set (or compute_train_rmse=True)"
            )
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.stale_epochs = 0
            return CONTINUE
        self.stale_epochs += 1
        if self.stale_epochs >= self.patience:
            self.stopped_at = report.epoch
            session.stop(reason="early_stopping")
            return STOP
        return CONTINUE


class Checkpoint(Callback):
    """Persist a resumable checkpoint every ``every_n`` epochs.

    Parameters
    ----------
    path:
        Destination file (``.npz`` is appended if missing).  A
        ``{epoch}`` placeholder, if present, is formatted with the
        0-based epoch index — without one the file is overwritten in
        place, always holding the latest boundary.
    every_n:
        Checkpoint frequency in epochs.

    The callback declares ``requires_pause``: on the threaded backend the
    session drains in-flight tasks at each boundary so the captured state
    is quiescent and exactly resumable (see
    :class:`~repro.exec.checkpoint.TrainCheckpoint`).
    """

    requires_pause = True

    def __init__(self, path, every_n: int = 1) -> None:
        if every_n <= 0:
            raise ConfigurationError(f"every_n must be positive, got {every_n}")
        self.path = path
        self.every_n = every_n
        self.saved_paths: List[str] = []

    def pause_at(self, epoch: int) -> bool:
        # Only the boundaries this callback will actually capture need
        # to quiesce the threaded pool.
        return (epoch + 1) % self.every_n == 0

    def on_epoch_end(self, report, session) -> Optional[_Decision]:
        if (report.epoch + 1) % self.every_n != 0:
            return CONTINUE
        from .checkpoint import TrainCheckpoint

        path = str(self.path)
        if "{epoch}" in path:
            path = path.format(epoch=report.epoch)
        saved = TrainCheckpoint.capture(session).save(path)
        self.saved_paths.append(saved)
        return CONTINUE


class JsonlLogger(Callback):
    """Append one JSON line per epoch to ``path``.

    Each line carries ``epoch``, ``engine_time``, ``train_rmse``,
    ``test_rmse`` and ``points_processed`` — the per-iteration trajectory
    the paper evaluates (Figure 12) in a grep/pandas-friendly format.  A
    final line with ``"event": "end"`` records the stop reason.
    """

    def __init__(self, path, append: bool = False) -> None:
        self.path = path
        self.append = append
        self._handle = None

    def on_train_begin(self, session: "EngineSession") -> None:
        mode = "a" if self.append else "w"
        self._handle = open(self.path, mode, encoding="utf-8")

    def on_epoch_end(self, report, session) -> Optional[_Decision]:
        record = {
            "event": "epoch",
            "epoch": report.epoch,
            "engine_time": report.engine_time,
            "train_rmse": report.train_rmse,
            "test_rmse": report.test_rmse,
            "points_processed": report.points_processed,
        }
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        return CONTINUE

    def on_train_end(self, result) -> None:
        if self._handle is None:
            return
        if result is None:
            record = {"event": "end", "error": True}
        else:
            record = {
                "event": "end",
                "epochs": len(result.trace.iterations),
                "engine_time": result.engine_time,
                "final_test_rmse": result.final_test_rmse,
                "converged": result.converged,
                "stop_reason": result.stop_reason,
            }
        self._handle.write(json.dumps(record) + "\n")
        self._handle.close()
        self._handle = None


class TimeBudget(Callback):
    """Stop after ``max_seconds`` of wall-clock time.

    Unlike the engines' ``max_simulated_time`` (simulated seconds on the
    simulator), this bounds real elapsed time on any backend — the knob a
    service uses for time-sliced training.  The budget is checked at
    epoch boundaries, so a run overshoots by at most one epoch.
    """

    def __init__(self, max_seconds: float) -> None:
        if max_seconds <= 0:
            raise ConfigurationError(
                f"max_seconds must be positive, got {max_seconds}"
            )
        self.max_seconds = float(max_seconds)
        self._deadline: Optional[float] = None

    def on_train_begin(self, session: "EngineSession") -> None:
        self._deadline = time.monotonic() + self.max_seconds

    def on_epoch_end(self, report, session) -> Optional[_Decision]:
        if self._deadline is not None and time.monotonic() >= self._deadline:
            session.stop(reason="wall_time_budget")
            return STOP
        return CONTINUE
