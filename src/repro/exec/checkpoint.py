"""Serializable training checkpoints.

A :class:`TrainCheckpoint` captures everything a paused
:class:`~repro.exec.session.EngineSession` needs to resume **bitwise
identically** to the uninterrupted run:

* the factor matrices ``P`` and ``Q``;
* the scheduler state — tie-break RNG, per-block update counters,
  per-iteration quota counters and steal counts (the inputs of every
  future scheduling decision);
* the engine-loop state — epoch/point counters, the engine clock, and
  (simulator only) the in-flight tasks dispatched across the paused
  epoch boundary, with their completion times and sequence numbers;
* the trace prefix, so the resumed run's RMSE curve and worker
  statistics continue seamlessly.

Checkpoints may only be captured at an epoch boundary (where sessions
pause), which is what makes the state small and well-defined: quota
resets and RMSE evaluation have happened, the learning-rate schedule is
fully described by the epoch index, and — on the threaded backend, or a
1-worker simulation — no task is mid-update.

Resuming requires reconstructing the *same* run: same ratings, same
division/scheduler configuration, same hyper-parameters.  The
checkpoint stores a fingerprint (matrix shape, nnz, ``k``, backend) and
:meth:`restore` refuses a session that does not match.  A checkpoint
without in-flight tasks (threads backend, or any 1-worker run) is
portable across backends; a multi-worker simulator checkpoint carries
simulated in-flight completions and can only resume on ``"simulate"``.

File format: a single compressed ``.npz`` holding the factor matrices,
the integer counter grids and one JSON document for the rest.

The process backend's crash recovery captures the same ingredients —
factors, scheduler ``state_dict()``, loop counters, trace lengths — as
a lightweight in-memory snapshot at every epoch boundary instead of a
serialized file: rollback-replay after a worker death restores exactly
the state a checkpoint would have recorded there (see
``ProcessSession._stage_recovery_snapshot`` and DESIGN.md, "Failure
model and recovery").
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

import numpy as np

from ..exceptions import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import EngineSession

PathLike = Union[str, os.PathLike]

#: Format version written into every checkpoint; bumped on layout changes.
CHECKPOINT_FORMAT = 1


def _trace_to_state(trace) -> dict:
    """Serialize an ExecutionTrace to plain JSON-able data."""
    return {
        "tasks": [
            {
                "worker_index": record.worker_index,
                "is_gpu": record.is_gpu,
                "start_time": record.start_time,
                "end_time": record.end_time,
                "points": record.points,
                "n_blocks": record.n_blocks,
                "stolen": record.stolen,
                "iteration": record.iteration,
            }
            for record in trace.tasks
        ],
        "iterations": [
            {
                "iteration": record.iteration,
                "simulated_time": record.simulated_time,
                "train_rmse": record.train_rmse,
                "test_rmse": record.test_rmse,
                "points_processed": record.points_processed,
            }
            for record in trace.iterations
        ],
        "final_time": trace.final_time,
        "target_rmse": trace.target_rmse,
        "target_reached_at": trace.target_reached_at,
    }


def _restore_trace(trace, state: dict) -> None:
    """Fill an existing ExecutionTrace with a serialized prefix."""
    from ..sim.trace import IterationRecord, TaskRecord

    trace.tasks = [TaskRecord(**record) for record in state["tasks"]]
    trace.iterations = [IterationRecord(**record) for record in state["iterations"]]
    trace.final_time = state["final_time"]
    trace.target_reached_at = state["target_reached_at"]


@dataclass
class TrainCheckpoint:
    """A resumable snapshot of one training run at an epoch boundary."""

    p: np.ndarray
    q: np.ndarray
    update_counts: np.ndarray
    points_this_iteration: np.ndarray
    scheduler_state: dict
    session_state: dict
    trace_state: dict
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Capture
    # ------------------------------------------------------------------ #
    @classmethod
    def capture(cls, session: "EngineSession") -> "TrainCheckpoint":
        """Snapshot a session paused at an epoch boundary.

        The factor matrices are copied, so the checkpoint stays valid
        while training continues.
        """
        model = session.model
        scheduler = session.scheduler
        scheduler_state = scheduler.state_dict()
        update_counts = scheduler_state.pop("update_counts")
        points_this_iteration = scheduler_state.pop("points_this_iteration")
        meta = {
            "format": CHECKPOINT_FORMAT,
            "backend": session.backend_name,
            "epoch": session.epoch,
            "n_rows": int(model.p.shape[0]),
            "n_cols": int(model.q.shape[1]),
            "latent_factors": int(model.latent_factors),
            "total_points": int(scheduler.total_points),
            "n_workers": int(scheduler.n_workers),
            "scheduler": type(scheduler).__name__,
            "grid_shape": [
                int(scheduler.grid.n_row_bands),
                int(scheduler.grid.n_col_bands),
            ],
        }
        return cls(
            p=model.p.copy(),
            q=model.q.T.copy().T,  # keep the item-major layout of Q
            update_counts=np.asarray(update_counts, dtype=np.int64),
            points_this_iteration=np.asarray(points_this_iteration, dtype=np.int64),
            scheduler_state=scheduler_state,
            session_state=session.state_dict(),
            trace_state=_trace_to_state(session.trace),
            meta=meta,
        )

    @property
    def epoch(self) -> int:
        """Epochs completed when the checkpoint was taken."""
        return int(self.meta.get("epoch", len(self.trace_state["iterations"])))

    # ------------------------------------------------------------------ #
    # Restore
    # ------------------------------------------------------------------ #
    def restore(self, session: "EngineSession") -> None:
        """Load this checkpoint into a freshly started session.

        The session must come from an identically-constructed engine
        (same ratings, division, scheduler seed and hyper-parameters)
        and must not have stepped yet.
        """
        if session.started:
            raise CheckpointError(
                "checkpoints can only be restored into a session that has "
                "not stepped yet"
            )
        model = session.model
        scheduler = session.scheduler
        mismatches = []
        if tuple(model.p.shape) != tuple(self.p.shape):
            mismatches.append(f"P shape {model.p.shape} != {self.p.shape}")
        if tuple(model.q.shape) != tuple(self.q.shape):
            mismatches.append(f"Q shape {model.q.shape} != {self.q.shape}")
        if scheduler.total_points != self.meta.get("total_points"):
            mismatches.append(
                f"grid nnz {scheduler.total_points} != {self.meta.get('total_points')}"
            )
        if scheduler.n_workers != self.meta.get("n_workers"):
            mismatches.append(
                f"worker count {scheduler.n_workers} != {self.meta.get('n_workers')}"
            )
        if type(scheduler).__name__ != self.meta.get("scheduler"):
            mismatches.append(
                f"scheduler {type(scheduler).__name__} != {self.meta.get('scheduler')}"
            )
        grid_shape = [
            int(scheduler.grid.n_row_bands),
            int(scheduler.grid.n_col_bands),
        ]
        if grid_shape != list(self.meta.get("grid_shape", grid_shape)):
            mismatches.append(
                f"grid {grid_shape} != {self.meta.get('grid_shape')}"
            )
        if mismatches:
            raise CheckpointError(
                "checkpoint does not match this run: " + "; ".join(mismatches)
            )

        # The session applies its loop state first: it performs the
        # backend-specific portability checks (e.g. the threaded backend
        # refuses checkpoints carrying simulated in-flight tasks) before
        # anything is mutated.
        session.load_state_dict(self.session_state)

        scheduler_state = dict(self.scheduler_state)
        scheduler_state["update_counts"] = self.update_counts
        scheduler_state["points_this_iteration"] = self.points_this_iteration
        scheduler.load_state_dict(scheduler_state)

        # In-place so the engine, the session and any BlockStore all keep
        # observing the same (item-major for Q) buffers.
        model.p[...] = self.p
        model.q[...] = self.q

        _restore_trace(session.trace, self.trace_state)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> str:
        """Write the checkpoint to ``<path>`` (``.npz`` appended if absent).

        Returns the path actually written.
        """
        path = os.fspath(path)
        if not path.endswith(".npz"):
            path = path + ".npz"
        payload = {
            "scheduler_state": self.scheduler_state,
            "session_state": self.session_state,
            "trace_state": self.trace_state,
            "meta": self.meta,
        }
        np.savez_compressed(
            path,
            p=self.p,
            q=self.q,
            update_counts=self.update_counts,
            points_this_iteration=self.points_this_iteration,
            payload=np.frombuffer(
                json.dumps(payload).encode("utf-8"), dtype=np.uint8
            ),
        )
        return path

    @classmethod
    def load(cls, path: PathLike) -> "TrainCheckpoint":
        """Read a checkpoint previously written by :meth:`save`."""
        path = os.fspath(path)
        if not path.endswith(".npz") and not os.path.exists(path):
            path = path + ".npz"
        try:
            with np.load(path) as data:
                payload = json.loads(bytes(data["payload"]).decode("utf-8"))
                checkpoint = cls(
                    p=np.ascontiguousarray(data["p"]),
                    q=np.ascontiguousarray(data["q"].T).T,
                    update_counts=np.asarray(data["update_counts"], dtype=np.int64),
                    points_this_iteration=np.asarray(
                        data["points_this_iteration"], dtype=np.int64
                    ),
                    scheduler_state=payload["scheduler_state"],
                    session_state=payload["session_state"],
                    trace_state=payload["trace_state"],
                    meta=payload["meta"],
                )
        except (KeyError, ValueError, OSError, zipfile.BadZipFile) as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        if checkpoint.meta.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unsupported checkpoint format {checkpoint.meta.get('format')!r} "
                f"(this build reads format {CHECKPOINT_FORMAT})"
            )
        return checkpoint
