"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidMatrixError(ReproError):
    """A sparse rating matrix is structurally invalid.

    Raised for mismatched coordinate-array lengths, out-of-range row or
    column indices, negative shapes, or empty matrices passed to routines
    that require at least one rating.
    """


class InvalidPartitionError(ReproError):
    """A grid partition violates a structural requirement.

    Examples: non-monotone boundaries, a boundary outside ``[0, m]``,
    fewer blocks than Rule 1 requires, or a zero-area band.
    """


class SchedulingError(ReproError):
    """The scheduler reached an inconsistent state.

    Raised when a worker is assigned a conflicting block, when a block is
    released twice, or when no runnable block exists although the grid
    invariant guarantees one.
    """


class CostModelError(ReproError):
    """A cost model could not be fitted or evaluated.

    Raised for insufficient calibration samples, non-finite fitted
    coefficients, or evaluation outside the model's valid domain.
    """


class CalibrationError(CostModelError):
    """Offline calibration (Algorithm 3 of the paper) failed."""


class SimulationError(ReproError):
    """The discrete-event simulation engine reached an invalid state."""


class ExecutionError(ReproError):
    """The threaded execution backend reached an invalid state.

    Raised for worker/platform mismatches, runs that can make no
    progress (every worker idle with work remaining), and failures
    propagated out of worker threads.
    """


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or parsed."""


class CheckpointError(ReproError):
    """A training checkpoint could not be captured, read, or restored.

    Raised for corrupt or version-mismatched checkpoint files, restores
    into a session that already stepped, and checkpoints whose run
    fingerprint (matrix shape, grid, worker count) does not match the
    session they are being restored into.
    """


class ConfigurationError(ReproError):
    """A configuration object carries contradictory or invalid values."""
