"""Curve-fitting primitives shared by the cost models.

The paper fits three kinds of curves against calibration measurements
(Section V):

* plain straight lines ``y = a x + b`` (least squares), used by the CPU
  model, by the large-size regime of the GPU models, and by the Qilin
  baseline;
* the *transfer-speed* form ``speed(s) = a sqrt(log s) + b`` for small
  transfers;
* the *kernel-speed* form ``speed(s) = a log s + b`` for small blocks.

It also implements the paper's empirical threshold rule: the boundary
``tau`` between the saturating and linear regimes is the first size at
which the speed varies by less than 2 % per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..exceptions import CostModelError

#: The paper's stability criterion: "when the variation of the transfer
#: speed is less than 2% in a time unit, we consider that the transfer
#: speed has been stable".
STABLE_SPEED_RELATIVE_CHANGE = 0.02


@dataclass(frozen=True)
class FittedLine:
    """A fitted straight line ``y = slope * x + intercept``."""

    slope: float
    intercept: float

    def __call__(self, x: float) -> float:
        return self.slope * x + self.intercept

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Vectorised evaluation."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def _as_clean_arrays(
    x: Sequence[float], y: Sequence[float], minimum_points: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and convert paired samples for fitting."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.ndim != 1 or y_arr.ndim != 1 or len(x_arr) != len(y_arr):
        raise CostModelError("fit inputs must be equal-length 1-D sequences")
    if len(x_arr) < minimum_points:
        raise CostModelError(
            f"need at least {minimum_points} samples to fit, got {len(x_arr)}"
        )
    if not (np.all(np.isfinite(x_arr)) and np.all(np.isfinite(y_arr))):
        raise CostModelError("fit inputs must be finite")
    return x_arr, y_arr


def fit_linear(x: Sequence[float], y: Sequence[float]) -> FittedLine:
    """Least-squares fit of ``y = a x + b``."""
    x_arr, y_arr = _as_clean_arrays(x, y, minimum_points=2)
    design = np.column_stack([x_arr, np.ones_like(x_arr)])
    coeffs, *_ = np.linalg.lstsq(design, y_arr, rcond=None)
    line = FittedLine(slope=float(coeffs[0]), intercept=float(coeffs[1]))
    if not (np.isfinite(line.slope) and np.isfinite(line.intercept)):
        raise CostModelError("linear fit produced non-finite coefficients")
    return line


def fit_speed_sqrt_log(sizes: Sequence[float], speeds: Sequence[float]) -> FittedLine:
    """Fit ``speed(s) = a * sqrt(log s) + b`` (the paper's transfer form).

    Returns a :class:`FittedLine` in the transformed coordinate
    ``sqrt(log s)``; evaluate it via
    ``line(np.sqrt(np.log(size)))``.
    """
    sizes_arr, speeds_arr = _as_clean_arrays(sizes, speeds, minimum_points=2)
    if np.any(sizes_arr <= 1.0):
        raise CostModelError("sizes must exceed 1 for the sqrt(log) transform")
    transformed = np.sqrt(np.log(sizes_arr))
    return fit_linear(transformed, speeds_arr)


def fit_speed_log(sizes: Sequence[float], speeds: Sequence[float]) -> FittedLine:
    """Fit ``speed(s) = a * log s + b`` (the paper's kernel form).

    Returns a :class:`FittedLine` in the transformed coordinate ``log s``.
    """
    sizes_arr, speeds_arr = _as_clean_arrays(sizes, speeds, minimum_points=2)
    if np.any(sizes_arr <= 0.0):
        raise CostModelError("sizes must be positive for the log transform")
    transformed = np.log(sizes_arr)
    return fit_linear(transformed, speeds_arr)


def stable_speed_threshold(
    sizes: Sequence[float],
    speeds: Sequence[float],
    relative_change: float = STABLE_SPEED_RELATIVE_CHANGE,
) -> float:
    """Find the size beyond which the speed curve has stabilised.

    Implements the paper's empirical rule for the regime boundary ``tau``:
    scan the (size-sorted) measurements and return the first size at which
    the relative speed change with respect to the previous measurement
    drops below ``relative_change`` and stays below it for all larger
    sizes.  Falls back to the largest size when the curve never settles.
    """
    sizes_arr, speeds_arr = _as_clean_arrays(sizes, speeds, minimum_points=2)
    if relative_change <= 0:
        raise CostModelError("relative_change must be positive")

    order = np.argsort(sizes_arr)
    sizes_sorted = sizes_arr[order]
    speeds_sorted = speeds_arr[order]

    with np.errstate(divide="ignore", invalid="ignore"):
        changes = np.abs(np.diff(speeds_sorted)) / np.maximum(
            np.abs(speeds_sorted[:-1]), 1e-12
        )

    # Find the earliest index i such that every subsequent change is small.
    stable_from = len(changes)
    for i in range(len(changes) - 1, -1, -1):
        if changes[i] < relative_change:
            stable_from = i
        else:
            break
    if stable_from >= len(changes):
        return float(sizes_sorted[-1])
    return float(sizes_sorted[stable_from + 1])
