"""Offline calibration of the cost models (Algorithm 3 of the paper).

The calibration phase runs once per machine.  It

1. shuffles the input matrix and forms cumulative prefixes
   ``S_1, S_1+S_2, ..., S_1+...+S_N`` (data preparation, Section V-A);
2. measures single-CPU-thread execution time on every prefix and fits the
   linear CPU model;
3. measures PCIe copy times over a range of transfer sizes and fits the
   piecewise transfer models (both directions);
4. measures GPU kernel execution time on every prefix and fits the
   piecewise kernel model;
5. combines transfer and kernel into the overall GPU model (Equation 9).

For the Qilin baseline the same probes are reused, but the GPU model is a
single straight line fitted on *end-to-end* GPU times (transfer and kernel
combined), which is exactly how Qilin profiles offloaded tasks.

The calibration only interacts with devices through their ``measure_*``
methods, so it works identically against the simulated hardware used here
and against real hardware wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..config import TrainingConfig
from ..exceptions import CalibrationError
from ..hardware import BlockWork, HeterogeneousPlatform
from ..sparse import SparseRatingMatrix, split_prefix_sums
from .cpu_model import CPUCostModel
from .gpu_model import GPUCostModel, KernelCostModel, TransferCostModel
from .qilin import QilinCostModel, QilinDeviceModel

#: Default number of cumulative prefixes used for device probing.
DEFAULT_SEGMENTS = 12

#: Default number of repeated measurements averaged per probe ("to
#: eliminate noise, the execution time in the training data is derived
#: from the average of multiple tests").
DEFAULT_REPEATS = 3

#: Transfer probe sizes, spanning the 64 KB - 256 MB range of Figure 6.
DEFAULT_TRANSFER_SIZES = tuple(
    int(64 * 1024 * (2 ** i)) for i in range(13)  # 64 KB ... 256 MB
)


def geometric_prefix_sizes(
    total_points: int, segments: int, minimum: int = 64
) -> List[int]:
    """Geometrically spaced workload sizes from ``minimum`` up to ``total_points``.

    The CPU model is linear, so the paper's equal-width cumulative
    prefixes suffice for it.  The GPU models are *not* linear precisely in
    the small-block regime (Observation 1), so the GPU probes must cover
    small workloads comparable to the blocks the division will actually
    produce; a geometric ladder does that with the same number of
    measurements.
    """
    if total_points <= 0:
        raise CalibrationError(f"total_points must be positive, got {total_points}")
    if segments < 2:
        raise CalibrationError(f"segments must be at least 2, got {segments}")
    minimum = max(2, min(minimum, total_points))
    sizes = np.unique(
        np.geomspace(minimum, total_points, num=segments).round().astype(int)
    )
    return [int(size) for size in sizes]


@dataclass(frozen=True)
class CalibrationProbe:
    """One measured calibration point."""

    points: int
    seconds: float

    @property
    def speed(self) -> float:
        """Measured throughput (ratings or bytes per second)."""
        if self.seconds <= 0:
            return 0.0
        return self.points / self.seconds


@dataclass
class CalibrationResult:
    """Everything produced by the offline phase.

    Attributes
    ----------
    cpu_model:
        The paper's linear single-thread CPU model.
    gpu_model:
        The paper's combined GPU model (Equation 9).
    qilin_model:
        The Qilin baseline (linear CPU and linear end-to-end GPU).
    cpu_probes, gpu_kernel_probes, gpu_total_probes:
        Raw measurements, kept for inspection and for the observation
        benchmarks.
    transfer_probes_h2d, transfer_probes_d2h:
        Raw transfer measurements ``(bytes, seconds)``.
    """

    cpu_model: CPUCostModel
    gpu_model: Optional[GPUCostModel]
    qilin_model: Optional[QilinCostModel]
    cpu_probes: List[CalibrationProbe] = field(default_factory=list)
    gpu_kernel_probes: List[CalibrationProbe] = field(default_factory=list)
    gpu_total_probes: List[CalibrationProbe] = field(default_factory=list)
    transfer_probes_h2d: List[CalibrationProbe] = field(default_factory=list)
    transfer_probes_d2h: List[CalibrationProbe] = field(default_factory=list)

    def gpu_time_for_points(self, points: float, cost_model: str = "paper") -> float:
        """Predicted one-GPU time under the selected cost model."""
        if cost_model == "paper":
            if self.gpu_model is None:
                raise CalibrationError("no GPU was calibrated")
            return self.gpu_model.time_for_points(points)
        if cost_model == "qilin":
            if self.qilin_model is None:
                raise CalibrationError("no GPU was calibrated")
            return self.qilin_model.gpu_time_for_points(points)
        raise CalibrationError(f"unknown cost model {cost_model!r}")

    def cpu_time_for_points(self, points: float, cost_model: str = "paper") -> float:
        """Predicted one-CPU-thread time under the selected cost model."""
        if cost_model == "paper":
            return self.cpu_model.time_for_points(points)
        if cost_model == "qilin":
            if self.qilin_model is None:
                # Qilin's CPU model is linear too, so fall back gracefully.
                return self.cpu_model.time_for_points(points)
            return self.qilin_model.cpu_time_for_points(points)
        raise CalibrationError(f"unknown cost model {cost_model!r}")


# --------------------------------------------------------------------------- #
# Individual probes (the test_* routines of Algorithm 3)
# --------------------------------------------------------------------------- #
def _work_for_prefix(
    prefix: SparseRatingMatrix, latent_factors: int
) -> BlockWork:
    """Describe a calibration prefix as a unit of block work."""
    distinct_rows = int(len(np.unique(prefix.rows))) if prefix.nnz else 0
    distinct_cols = int(len(np.unique(prefix.cols))) if prefix.nnz else 0
    return BlockWork(
        nnz=prefix.nnz,
        p_rows=distinct_rows,
        q_cols=distinct_cols,
        latent_factors=latent_factors,
    )


def probe_cpu_kernel(
    platform: HeterogeneousPlatform,
    prefixes: Sequence[SparseRatingMatrix],
    latent_factors: int,
    repeats: int = DEFAULT_REPEATS,
) -> List[CalibrationProbe]:
    """Measure single-thread CPU time on every calibration prefix."""
    if repeats <= 0:
        raise CalibrationError(f"repeats must be positive, got {repeats}")
    device = platform.representative_cpu()
    probes = []
    for prefix in prefixes:
        work = _work_for_prefix(prefix, latent_factors)
        seconds = float(
            np.mean([device.measure_process_time(work) for _ in range(repeats)])
        )
        probes.append(CalibrationProbe(points=work.nnz, seconds=seconds))
    return probes


def probe_gpu_kernel(
    platform: HeterogeneousPlatform,
    prefixes: Sequence[SparseRatingMatrix],
    latent_factors: int,
    repeats: int = DEFAULT_REPEATS,
) -> List[CalibrationProbe]:
    """Measure GPU kernel-only time on every calibration prefix."""
    if repeats <= 0:
        raise CalibrationError(f"repeats must be positive, got {repeats}")
    device = platform.representative_gpu()
    probes = []
    for prefix in prefixes:
        work = _work_for_prefix(prefix, latent_factors)
        seconds = float(
            np.mean([device.kernel_time(work) for _ in range(repeats)])
        )
        probes.append(CalibrationProbe(points=work.nnz, seconds=seconds))
    return probes


def probe_gpu_total(
    platform: HeterogeneousPlatform,
    prefixes: Sequence[SparseRatingMatrix],
    latent_factors: int,
    repeats: int = DEFAULT_REPEATS,
) -> List[CalibrationProbe]:
    """Measure end-to-end GPU time (transfer + kernel, overlapped) per prefix.

    These are the measurements a Qilin-style profiler would record.
    """
    device = platform.representative_gpu()
    probes = []
    for prefix in prefixes:
        work = _work_for_prefix(prefix, latent_factors)
        seconds = float(
            np.mean([device.measure_process_time(work) for _ in range(repeats)])
        )
        probes.append(CalibrationProbe(points=work.nnz, seconds=seconds))
    return probes


def probe_transfer_link(
    platform: HeterogeneousPlatform,
    sizes_bytes: Sequence[int] = DEFAULT_TRANSFER_SIZES,
    direction: str = "h2d",
) -> List[CalibrationProbe]:
    """Measure PCIe copy time for a sweep of transfer sizes (Figure 6)."""
    device = platform.representative_gpu()
    probes = []
    for size in sizes_bytes:
        if size <= 0:
            raise CalibrationError(f"transfer sizes must be positive, got {size}")
        if direction == "h2d":
            seconds = device.pcie.host_to_device_time(size)
        elif direction == "d2h":
            seconds = device.pcie.device_to_host_time(size)
        else:
            raise CalibrationError(f"unknown transfer direction {direction!r}")
        probes.append(CalibrationProbe(points=int(size), seconds=seconds))
    return probes


# --------------------------------------------------------------------------- #
# The full offline phase
# --------------------------------------------------------------------------- #
def calibrate_platform(
    platform: HeterogeneousPlatform,
    matrix: SparseRatingMatrix,
    training: Optional[TrainingConfig] = None,
    segments: int = DEFAULT_SEGMENTS,
    repeats: int = DEFAULT_REPEATS,
    sample_fraction: float = 1.0,
    seed: int = 0,
) -> CalibrationResult:
    """Run the full offline calibration (Algorithm 3).

    Parameters
    ----------
    platform:
        The machine to calibrate.
    matrix:
        The rating matrix (or any representative matrix); a shuffled
        sample of it provides the calibration workloads.
    training:
        Training configuration; only ``latent_factors`` matters (it sets
        the factor-segment transfer sizes).
    segments:
        Number of cumulative prefixes ``N``.
    repeats:
        Measurements averaged per probe.
    sample_fraction:
        Fraction of the matrix used for calibration; values below 1 keep
        the offline phase cheap for very large matrices.
    seed:
        Seed of the shuffle and sampling.

    Returns
    -------
    CalibrationResult
    """
    if matrix.nnz < segments:
        raise CalibrationError(
            f"matrix has only {matrix.nnz} ratings but {segments} segments requested"
        )
    training = training or TrainingConfig()

    sample = matrix if sample_fraction >= 1.0 else matrix.sample(sample_fraction, seed)
    shuffled = sample.shuffled(seed=seed)
    prefixes = split_prefix_sums(shuffled, segments)
    # The GPU probes additionally cover small workloads (see
    # geometric_prefix_sizes): GPU behaviour is non-linear exactly there.
    gpu_prefix_sizes = geometric_prefix_sizes(shuffled.nnz, max(segments, 8))
    gpu_prefixes = [shuffled.prefix(size) for size in gpu_prefix_sizes]

    cpu_probes = probe_cpu_kernel(platform, prefixes, training.latent_factors, repeats)
    cpu_model = CPUCostModel.fit(
        [probe.points for probe in cpu_probes],
        [probe.seconds for probe in cpu_probes],
    )

    gpu_model = None
    qilin_model = None
    gpu_kernel_probes: List[CalibrationProbe] = []
    gpu_total_probes: List[CalibrationProbe] = []
    h2d_probes: List[CalibrationProbe] = []
    d2h_probes: List[CalibrationProbe] = []

    if platform.n_gpus > 0:
        h2d_probes = probe_transfer_link(platform, direction="h2d")
        d2h_probes = probe_transfer_link(platform, direction="d2h")
        gpu_kernel_probes = probe_gpu_kernel(
            platform, gpu_prefixes, training.latent_factors, repeats
        )
        # The Qilin baseline profiles end-to-end offloaded tasks on the
        # *linearly* spaced subparts, exactly as Qilin does; its linear fit
        # therefore reflects large-workload throughput, which is the
        # inaccuracy on small blocks the paper's Table II demonstrates.
        gpu_total_probes = probe_gpu_total(
            platform, prefixes, training.latent_factors, repeats
        )

        host_to_device = TransferCostModel.fit(
            [probe.points for probe in h2d_probes],
            [probe.seconds for probe in h2d_probes],
        )
        device_to_host = TransferCostModel.fit(
            [probe.points for probe in d2h_probes],
            [probe.seconds for probe in d2h_probes],
        )
        kernel = KernelCostModel.fit(
            [probe.points for probe in gpu_kernel_probes],
            [probe.seconds for probe in gpu_kernel_probes],
        )
        works = [_work_for_prefix(p, training.latent_factors) for p in gpu_prefixes]
        bytes_per_point = float(
            np.mean([w.host_to_device_bytes / max(1, w.nnz) for w in works])
        )
        gpu_model = GPUCostModel(
            kernel=kernel,
            host_to_device=host_to_device,
            device_to_host=device_to_host,
            bytes_per_point=bytes_per_point,
        )

        qilin_cpu = QilinDeviceModel.fit(
            [probe.points for probe in cpu_probes],
            [probe.seconds for probe in cpu_probes],
        )
        qilin_gpu = QilinDeviceModel.fit(
            [probe.points for probe in gpu_total_probes],
            [probe.seconds for probe in gpu_total_probes],
        )
        qilin_model = QilinCostModel(cpu=qilin_cpu, gpu=qilin_gpu)

    return CalibrationResult(
        cpu_model=cpu_model,
        gpu_model=gpu_model,
        qilin_model=qilin_model,
        cpu_probes=cpu_probes,
        gpu_kernel_probes=gpu_kernel_probes,
        gpu_total_probes=gpu_total_probes,
        transfer_probes_h2d=h2d_probes,
        transfer_probes_d2h=d2h_probes,
    )
