"""Linear CPU cost model.

The paper keeps Qilin's assumption for the CPU side: a single worker
thread's execution time grows linearly with the number of ratings it must
process (Observation 2 shows per-thread CPU throughput is flat in block
size, which is exactly the linear-time regime).  The model is fitted by
least squares on the cumulative-prefix measurements produced by the
calibration phase (Algorithm 3, lines 2-3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import CostModelError
from .fitting import FittedLine, fit_linear


class CPUCostModel:
    """Predicts single-thread CPU time (seconds) for a given rating count.

    Parameters
    ----------
    line:
        The fitted ``time = slope * points + intercept`` relationship.
    """

    def __init__(self, line: FittedLine) -> None:
        if line.slope <= 0:
            raise CostModelError(
                f"CPU cost must increase with data size, got slope {line.slope}"
            )
        self.line = line

    @classmethod
    def fit(cls, points: Sequence[float], times: Sequence[float]) -> "CPUCostModel":
        """Fit the model from calibration samples.

        Parameters
        ----------
        points:
            Number of ratings in each calibration workload.
        times:
            Measured single-thread execution time for each workload.
        """
        return cls(fit_linear(points, times))

    def time_for_points(self, points: float) -> float:
        """Predicted single-thread seconds to update ``points`` ratings once."""
        if points < 0:
            raise CostModelError(f"points must be non-negative, got {points}")
        if points == 0:
            return 0.0
        return max(0.0, self.line(points))

    def speed_for_points(self, points: float) -> float:
        """Predicted update throughput (ratings/s) for a ``points``-sized workload."""
        if points <= 0:
            return 0.0
        time = self.time_for_points(points)
        if time <= 0:
            raise CostModelError("predicted CPU time is non-positive")
        return points / time

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Vectorised prediction of single-thread times."""
        points = np.asarray(points, dtype=np.float64)
        return np.maximum(0.0, self.line.evaluate(points))

    def __repr__(self) -> str:
        return (
            f"CPUCostModel(time = {self.line.slope:.3e} * points "
            f"+ {self.line.intercept:.3e})"
        )
