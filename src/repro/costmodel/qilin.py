"""Qilin-style linear cost model (the paper's cost-model baseline).

Qilin (Luk, Hong, Kim — MICRO 2009, reference [11] of the paper) maps work
between CPU and GPU by fitting *linear* execution-time models for both
devices from a profiling run and then splitting the input so predicted
times are equal.  The paper's Table II compares HSGD\\*-Q (this model)
against HSGD\\*-M (the paper's model) and shows the linear GPU fit
misestimates the non-linear GPU behaviour, producing a worse split.

The classes here expose the same ``time_for_points`` interface as the
paper's models so the scheduler can swap them freely.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import CostModelError
from .fitting import FittedLine, fit_linear


class QilinDeviceModel:
    """Linear per-device time model ``time = a * points + b``."""

    def __init__(self, line: FittedLine) -> None:
        if line.slope <= 0:
            raise CostModelError(
                f"device cost must increase with data size, got slope {line.slope}"
            )
        self.line = line

    @classmethod
    def fit(
        cls, points: Sequence[float], times: Sequence[float]
    ) -> "QilinDeviceModel":
        """Least-squares fit from ``(points, seconds)`` profiling samples."""
        return cls(fit_linear(points, times))

    def time_for_points(self, points: float) -> float:
        """Predicted seconds to process ``points`` ratings once."""
        if points < 0:
            raise CostModelError(f"points must be non-negative, got {points}")
        if points == 0:
            return 0.0
        return max(0.0, self.line(points))

    def speed_for_points(self, points: float) -> float:
        """Predicted throughput (ratings/s) for a ``points``-sized workload."""
        if points <= 0:
            return 0.0
        time = self.time_for_points(points)
        if time <= 0:
            raise CostModelError("predicted time is non-positive")
        return points / time

    def __repr__(self) -> str:
        return (
            f"QilinDeviceModel(time = {self.line.slope:.3e} * points "
            f"+ {self.line.intercept:.3e})"
        )


class QilinCostModel:
    """The pair of linear device models used by HSGD*-Q.

    Attributes
    ----------
    cpu:
        Linear model of one CPU worker thread.
    gpu:
        Linear model of one GPU (fitted on *end-to-end* measured GPU times,
        i.e. including transfers, as Qilin profiles whole offloaded tasks).
    """

    def __init__(self, cpu: QilinDeviceModel, gpu: QilinDeviceModel) -> None:
        self.cpu = cpu
        self.gpu = gpu

    def cpu_time_for_points(self, points: float) -> float:
        """Predicted single-thread CPU seconds for ``points`` ratings."""
        return self.cpu.time_for_points(points)

    def gpu_time_for_points(self, points: float) -> float:
        """Predicted single-GPU seconds for ``points`` ratings."""
        return self.gpu.time_for_points(points)

    def __repr__(self) -> str:
        return f"QilinCostModel(cpu={self.cpu!r}, gpu={self.gpu!r})"
