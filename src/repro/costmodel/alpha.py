"""Workload-split solver (Equations 7 and 8 of the paper).

Given cost functions ``f_g`` (time of one GPU on a workload) and ``f_c``
(time of one CPU thread on a workload), the fraction ``alpha`` of the
matrix assigned to GPUs is chosen so the two resources finish together:

.. math::

    T = \\max\\left(\\frac{T_g(\\alpha)}{n_g},
                    \\frac{T_c(1-\\alpha)}{n_c}\\right)
    \\qquad
    \\alpha = \\arg\\min \\left|\\frac{T_g(\\alpha)}{n_g}
                              - \\frac{T_c(1-\\alpha)}{n_c}\\right|

Both cost functions are monotone in the workload size, so the objective is
unimodal and a golden-section / dense-grid search over ``[0, 1]`` finds
the optimum reliably; we use :func:`scipy.optimize.minimize_scalar` with a
bounded method plus a safety grid refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import optimize

from ..exceptions import CostModelError

#: Number of grid points used for the fallback/verification sweep.
_GRID_POINTS = 512


@dataclass(frozen=True)
class WorkloadSplit:
    """Result of the workload-division optimisation.

    Attributes
    ----------
    alpha:
        Fraction of the ratings assigned to GPUs (``R_g``).
    gpu_time:
        Predicted per-GPU time for its share (``T_g(alpha) / n_g``).
    cpu_time:
        Predicted per-thread CPU time for its share
        (``T_c(1 - alpha) / n_c``).
    """

    alpha: float
    gpu_time: float
    cpu_time: float

    @property
    def predicted_makespan(self) -> float:
        """Predicted overall time ``max(gpu_time, cpu_time)`` (Equation 7)."""
        return max(self.gpu_time, self.cpu_time)

    @property
    def imbalance(self) -> float:
        """Absolute difference of the two per-resource times (Equation 8)."""
        return abs(self.gpu_time - self.cpu_time)

    @property
    def cpu_share(self) -> float:
        """Fraction of ratings handled by CPUs, ``1 - alpha``."""
        return 1.0 - self.alpha


def solve_alpha(
    gpu_time_for_points: Callable[[float], float],
    cpu_time_for_points: Callable[[float], float],
    total_points: float,
    n_gpus: int,
    n_cpu_threads: int,
) -> WorkloadSplit:
    """Choose the GPU workload share ``alpha`` that balances the devices.

    Parameters
    ----------
    gpu_time_for_points:
        Cost function of **one** GPU: seconds to update a workload of the
        given number of ratings once.
    cpu_time_for_points:
        Cost function of **one** CPU worker thread.
    total_points:
        Total number of ratings ``|R|`` in the matrix.
    n_gpus, n_cpu_threads:
        The resource counts ``ng`` and ``nc``.

    Returns
    -------
    WorkloadSplit

    Notes
    -----
    * ``n_gpus == 0`` forces ``alpha = 0`` and ``n_cpu_threads == 0``
      forces ``alpha = 1``.
    * The per-resource GPU time divides ``T_g`` by ``n_gpus``; the per-
      resource CPU time divides ``T_c`` by ``n_cpu_threads`` (Equation 7).
    """
    if total_points <= 0:
        raise CostModelError(f"total_points must be positive, got {total_points}")
    if n_gpus < 0 or n_cpu_threads < 0:
        raise CostModelError("resource counts must be non-negative")
    if n_gpus == 0 and n_cpu_threads == 0:
        raise CostModelError("at least one resource is required")

    def per_resource_times(alpha: float) -> tuple:
        gpu_points = alpha * total_points
        cpu_points = (1.0 - alpha) * total_points
        gpu_time = (
            gpu_time_for_points(gpu_points) / n_gpus if n_gpus > 0 else 0.0
        )
        cpu_time = (
            cpu_time_for_points(cpu_points) / n_cpu_threads
            if n_cpu_threads > 0
            else 0.0
        )
        return gpu_time, cpu_time

    if n_gpus == 0:
        gpu_time, cpu_time = per_resource_times(0.0)
        return WorkloadSplit(alpha=0.0, gpu_time=gpu_time, cpu_time=cpu_time)
    if n_cpu_threads == 0:
        gpu_time, cpu_time = per_resource_times(1.0)
        return WorkloadSplit(alpha=1.0, gpu_time=gpu_time, cpu_time=cpu_time)

    def objective(alpha: float) -> float:
        gpu_time, cpu_time = per_resource_times(float(np.clip(alpha, 0.0, 1.0)))
        return abs(gpu_time - cpu_time)

    result = optimize.minimize_scalar(
        objective, bounds=(0.0, 1.0), method="bounded",
        options={"xatol": 1e-6},
    )
    best_alpha = float(np.clip(result.x, 0.0, 1.0))
    best_value = objective(best_alpha)

    # Safety net: a coarse grid sweep catches pathological cost functions
    # where the bounded scalar search stalls in a flat region.
    grid = np.linspace(0.0, 1.0, _GRID_POINTS)
    grid_values = np.array([objective(a) for a in grid])
    grid_best = int(np.argmin(grid_values))
    if grid_values[grid_best] < best_value:
        best_alpha = float(grid[grid_best])

    gpu_time, cpu_time = per_resource_times(best_alpha)
    return WorkloadSplit(alpha=best_alpha, gpu_time=gpu_time, cpu_time=cpu_time)
