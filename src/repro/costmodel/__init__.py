"""Cost models for workload division (Section V of the paper).

The paper divides the rating matrix between CPUs and GPUs by predicting
how long either resource would take on a given amount of data:

* the **CPU cost model** is linear in the data size (as in Qilin), fitted
  on cumulative prefixes of a shuffled sample of the input;
* the **GPU cost model** is the maximum of a *transfer* model and a
  *kernel* model (Equation 9), because CUDA streams overlap the PCIe copy
  with the kernel execution.  Both parts are piecewise: a saturating
  small-size regime (``|R| / (a sqrt(log|R|) + b)`` for transfers,
  ``|R| / (a log|R| + b)`` for the kernel) followed by a linear regime
  beyond a threshold ``tau`` where the speed has stabilised;
* the **Qilin baseline** fits plain linear models for both devices, which
  the paper shows misestimates the GPU on small-to-medium blocks
  (Table II).

Given the fitted models, the workload split ``alpha`` (fraction of the
matrix assigned to GPUs) is chosen to equalise the per-resource times
(Equations 7 and 8).
"""

from .fitting import (
    FittedLine,
    fit_linear,
    fit_speed_log,
    fit_speed_sqrt_log,
    stable_speed_threshold,
)
from .cpu_model import CPUCostModel
from .gpu_model import GPUCostModel, KernelCostModel, TransferCostModel
from .qilin import QilinCostModel, QilinDeviceModel
from .alpha import WorkloadSplit, solve_alpha
from .calibration import (
    CalibrationProbe,
    CalibrationResult,
    calibrate_platform,
    geometric_prefix_sizes,
    probe_cpu_kernel,
    probe_gpu_kernel,
    probe_transfer_link,
)

__all__ = [
    "FittedLine",
    "fit_linear",
    "fit_speed_log",
    "fit_speed_sqrt_log",
    "stable_speed_threshold",
    "CPUCostModel",
    "GPUCostModel",
    "KernelCostModel",
    "TransferCostModel",
    "QilinCostModel",
    "QilinDeviceModel",
    "WorkloadSplit",
    "solve_alpha",
    "CalibrationProbe",
    "CalibrationResult",
    "calibrate_platform",
    "geometric_prefix_sizes",
    "probe_cpu_kernel",
    "probe_gpu_kernel",
    "probe_transfer_link",
]
