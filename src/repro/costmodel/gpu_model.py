"""GPU cost model: transfer, kernel, and their stream-overlapped combination.

Section V-B of the paper models the GPU time for a workload ``R`` as

.. math::

    f_g = \\max(f_g^{c \\Rightarrow g}, f_g^{kernel})

(Equation 9), where both parts are piecewise:

* **transfer** (host to device): for ``|R| <= tau`` the copy speed follows
  ``a sqrt(log |R|) + b`` and the time is ``|R| / speed``; beyond ``tau``
  the time is linear in ``|R|``;
* **kernel**: for ``|R| <= tau`` the update speed follows
  ``a log |R| + b``; beyond ``tau`` the time is linear.

The device-to-host copy is always smaller than the host-to-device copy
(only the updated factor segments return), so it never appears in the
maximum; we still fit it for completeness and reporting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import CostModelError
from .fitting import (
    FittedLine,
    fit_linear,
    fit_speed_log,
    fit_speed_sqrt_log,
    stable_speed_threshold,
)


class TransferCostModel:
    """Piecewise PCIe transfer-time model (one direction).

    Parameters
    ----------
    speed_line:
        Fitted line of ``speed = a * sqrt(log bytes) + b`` for the
        small-transfer regime.
    linear_time:
        Fitted line of ``time = a * bytes + b`` for the large-transfer
        regime.
    threshold_bytes:
        Regime boundary ``tau``.
    """

    def __init__(
        self,
        speed_line: FittedLine,
        linear_time: FittedLine,
        threshold_bytes: float,
        min_fitted_bytes: float = 2.0,
    ) -> None:
        if threshold_bytes <= 0:
            raise CostModelError(
                f"threshold must be positive, got {threshold_bytes}"
            )
        self.speed_line = speed_line
        self.linear_time = linear_time
        self.threshold_bytes = float(threshold_bytes)
        #: Smallest transfer size seen during fitting; the speed curve is
        #: not extrapolated below it (tiny transfers inherit its speed).
        self.min_fitted_bytes = max(2.0, float(min_fitted_bytes))

    @classmethod
    def fit(
        cls, sizes_bytes: Sequence[float], times: Sequence[float]
    ) -> "TransferCostModel":
        """Fit the two regimes from measured ``(bytes, seconds)`` samples."""
        sizes = np.asarray(sizes_bytes, dtype=np.float64)
        times_arr = np.asarray(times, dtype=np.float64)
        if len(sizes) < 4:
            raise CostModelError(
                f"need at least 4 transfer samples, got {len(sizes)}"
            )
        if np.any(sizes <= 1.0) or np.any(times_arr <= 0.0):
            raise CostModelError("transfer samples must have size > 1 and time > 0")

        speeds = sizes / times_arr
        threshold = stable_speed_threshold(sizes, speeds)

        small = sizes <= threshold
        # Guard against degenerate splits: both regimes need >= 2 samples.
        if small.sum() < 2:
            order = np.argsort(sizes)
            small = np.zeros_like(small)
            small[order[:2]] = True
            threshold = float(sizes[order[1]])
        if (~small).sum() < 2:
            order = np.argsort(sizes)
            small = np.ones_like(small)
            small[order[-2:]] = False
            threshold = float(sizes[order[-3]]) if len(sizes) >= 3 else float(
                sizes[order[0]]
            )

        speed_line = fit_speed_sqrt_log(sizes[small], speeds[small])
        linear_time = fit_linear(sizes[~small], times_arr[~small])
        return cls(
            speed_line, linear_time, threshold, min_fitted_bytes=float(sizes.min())
        )

    def time_for_bytes(self, size_bytes: float) -> float:
        """Predicted transfer seconds for ``size_bytes``.

        Sizes below the smallest calibrated transfer inherit that
        transfer's speed rather than extrapolating the fitted curve into a
        regime it never observed.
        """
        if size_bytes < 0:
            raise CostModelError(f"size must be non-negative, got {size_bytes}")
        if size_bytes == 0:
            return 0.0
        if size_bytes <= self.threshold_bytes:
            effective = max(size_bytes, self.min_fitted_bytes)
            speed = self.speed_line(float(np.sqrt(np.log(effective))))
            if speed <= 0:
                raise CostModelError("fitted transfer speed is non-positive")
            return size_bytes / speed
        return max(0.0, self.linear_time(size_bytes))

    def bandwidth_for_bytes(self, size_bytes: float) -> float:
        """Predicted effective bandwidth (bytes/s) for a transfer."""
        if size_bytes <= 0:
            return 0.0
        return size_bytes / self.time_for_bytes(size_bytes)

    def __repr__(self) -> str:
        return f"TransferCostModel(threshold={self.threshold_bytes:.0f} bytes)"


class KernelCostModel:
    """Piecewise GPU kernel-time model.

    Parameters mirror :class:`TransferCostModel`, with the small-regime
    speed fitted as ``a log points + b``.
    """

    def __init__(
        self,
        speed_line: FittedLine,
        linear_time: FittedLine,
        threshold_points: float,
        min_fitted_points: float = 2.0,
    ) -> None:
        if threshold_points <= 0:
            raise CostModelError(
                f"threshold must be positive, got {threshold_points}"
            )
        self.speed_line = speed_line
        self.linear_time = linear_time
        self.threshold_points = float(threshold_points)
        #: Smallest workload seen during fitting; smaller workloads
        #: inherit its throughput instead of extrapolating the curve.
        self.min_fitted_points = max(2.0, float(min_fitted_points))

    @classmethod
    def fit(
        cls, points: Sequence[float], times: Sequence[float]
    ) -> "KernelCostModel":
        """Fit the two regimes from measured ``(points, seconds)`` samples."""
        points_arr = np.asarray(points, dtype=np.float64)
        times_arr = np.asarray(times, dtype=np.float64)
        if len(points_arr) < 4:
            raise CostModelError(
                f"need at least 4 kernel samples, got {len(points_arr)}"
            )
        if np.any(points_arr <= 0.0) or np.any(times_arr <= 0.0):
            raise CostModelError("kernel samples must be positive")

        speeds = points_arr / times_arr
        threshold = stable_speed_threshold(points_arr, speeds)

        small = points_arr <= threshold
        if small.sum() < 2:
            order = np.argsort(points_arr)
            small = np.zeros_like(small)
            small[order[:2]] = True
            threshold = float(points_arr[order[1]])
        if (~small).sum() < 2:
            order = np.argsort(points_arr)
            small = np.ones_like(small)
            small[order[-2:]] = False
            threshold = float(points_arr[order[-3]]) if len(points_arr) >= 3 else float(
                points_arr[order[0]]
            )

        speed_line = fit_speed_log(points_arr[small], speeds[small])
        linear_time = fit_linear(points_arr[~small], times_arr[~small])
        return cls(
            speed_line,
            linear_time,
            threshold,
            min_fitted_points=float(points_arr.min()),
        )

    def time_for_points(self, points: float) -> float:
        """Predicted kernel seconds to update ``points`` ratings once.

        Workloads below the smallest calibrated workload inherit its
        throughput rather than extrapolating the fitted speed curve.
        """
        if points < 0:
            raise CostModelError(f"points must be non-negative, got {points}")
        if points == 0:
            return 0.0
        if points <= self.threshold_points:
            effective = max(points, self.min_fitted_points)
            speed = self.speed_line(float(np.log(effective)))
            if speed <= 0:
                raise CostModelError("fitted kernel speed is non-positive")
            return points / speed
        return max(0.0, self.linear_time(points))

    def speed_for_points(self, points: float) -> float:
        """Predicted kernel update throughput (ratings/s)."""
        if points <= 0:
            return 0.0
        return points / self.time_for_points(points)

    def __repr__(self) -> str:
        return f"KernelCostModel(threshold={self.threshold_points:.0f} points)"


class GPUCostModel:
    """Overall GPU cost model: ``max(transfer, kernel)`` (Equation 9).

    Parameters
    ----------
    kernel:
        Kernel-time model in rating counts.
    host_to_device:
        Transfer-time model in bytes for the CPU-to-GPU direction.
    device_to_host:
        Transfer-time model for the return direction (reported but never
        the maximum, because far fewer bytes travel back).
    bytes_per_point:
        Average bytes shipped to the GPU per rating, estimated during
        calibration; converts rating counts into transfer sizes.
    """

    def __init__(
        self,
        kernel: KernelCostModel,
        host_to_device: TransferCostModel,
        device_to_host: TransferCostModel,
        bytes_per_point: float,
    ) -> None:
        if bytes_per_point <= 0:
            raise CostModelError(
                f"bytes_per_point must be positive, got {bytes_per_point}"
            )
        self.kernel = kernel
        self.host_to_device = host_to_device
        self.device_to_host = device_to_host
        self.bytes_per_point = float(bytes_per_point)

    def transfer_time_for_points(self, points: float) -> float:
        """Predicted host-to-device copy time for a ``points``-sized workload."""
        return self.host_to_device.time_for_bytes(points * self.bytes_per_point)

    def kernel_time_for_points(self, points: float) -> float:
        """Predicted kernel time for a ``points``-sized workload."""
        return self.kernel.time_for_points(points)

    def time_for_points(self, points: float) -> float:
        """Overall predicted GPU time: the stream-overlapped maximum."""
        if points < 0:
            raise CostModelError(f"points must be non-negative, got {points}")
        if points == 0:
            return 0.0
        return max(
            self.transfer_time_for_points(points),
            self.kernel_time_for_points(points),
        )

    def speed_for_points(self, points: float) -> float:
        """Predicted end-to-end GPU update throughput (ratings/s)."""
        if points <= 0:
            return 0.0
        return points / self.time_for_points(points)

    def bottleneck(self, points: float) -> str:
        """Which stream dominates the cost: ``"transfer"`` or ``"kernel"``."""
        if self.transfer_time_for_points(points) >= self.kernel_time_for_points(points):
            return "transfer"
        return "kernel"

    def __repr__(self) -> str:
        return (
            f"GPUCostModel(bytes_per_point={self.bytes_per_point:.1f}, "
            f"kernel={self.kernel!r})"
        )
