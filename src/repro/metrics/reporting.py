"""Plain-text reporting helpers.

The experiment harness prints the same rows and series the paper reports;
these helpers keep the formatting in one place so benchmarks, the CLI and
the examples produce consistent output.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

from ..exceptions import ReproError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
        if len(rendered) != len(headers):
            raise ReproError(
                f"row has {len(rendered)} cells but there are {len(headers)} headers"
            )

    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_line(headers), render_line(["-" * w for w in widths])]
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_curve(
    points: Sequence[Tuple[float, float]],
    x_label: str = "time",
    y_label: str = "rmse",
    float_format: str = "{:.4f}",
) -> str:
    """Render an ``(x, y)`` series as a two-column table."""
    return format_table(
        [x_label, y_label],
        [(x, y) for x, y in points],
        float_format=float_format,
    )


def format_mapping(mapping: Mapping[str, object], float_format: str = "{:.4f}") -> str:
    """Render a flat mapping as ``key: value`` lines."""
    lines = []
    for key, value in mapping.items():
        if isinstance(value, float):
            lines.append(f"{key}: {float_format.format(value)}")
        else:
            lines.append(f"{key}: {value}")
    return "\n".join(lines)
