"""Convergence and efficiency metrics over training results."""

from __future__ import annotations

from typing import Dict, Optional

from ..exceptions import ReproError
from ..sim import ExecutionTrace


def time_to_target(trace: ExecutionTrace, target_rmse: float) -> Optional[float]:
    """Earliest simulated time at which the trace's test RMSE meets a target.

    Returns ``None`` when the run never reached the target (the paper
    only reports timings for targets reachable by every competitor).
    """
    return trace.time_to_rmse(target_rmse)


def relative_speedup(baseline_time: float, improved_time: float) -> float:
    """Speedup of an improved time over a baseline (>1 means faster).

    Raises
    ------
    ReproError
        If either time is non-positive.
    """
    if baseline_time <= 0 or improved_time <= 0:
        raise ReproError(
            f"times must be positive, got baseline={baseline_time}, "
            f"improved={improved_time}"
        )
    return baseline_time / improved_time


def summarize_convergence(trace: ExecutionTrace) -> Dict[str, float]:
    """Summary statistics of a run's convergence behaviour."""
    curve = trace.rmse_curve()
    if not curve:
        return {
            "iterations": 0.0,
            "final_rmse": float("nan"),
            "best_rmse": float("nan"),
            "final_time": trace.final_time,
        }
    rmses = [value for _, value in curve]
    return {
        "iterations": float(len(curve)),
        "final_rmse": rmses[-1],
        "best_rmse": min(rmses),
        "final_time": trace.final_time,
    }
