"""Update-imbalance statistics.

Example 3 of the paper shows that HSGD's greedy assignment makes "the
numbers of updates for different blocks severely unbalanced", which
degrades training quality.  These helpers quantify that imbalance from a
grid's per-block update counters so the effect can be measured rather
than eyeballed.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.grid import BlockGrid
from ..exceptions import ReproError


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, 1 = concentrated)."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if len(values) == 0:
        raise ReproError("gini coefficient of an empty sample is undefined")
    if np.any(values < 0):
        raise ReproError("gini coefficient requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(values)
    ranks = np.arange(1, len(values) + 1)
    return float(
        (2.0 * np.sum(ranks * sorted_values)) / (len(values) * total)
        - (len(values) + 1.0) / len(values)
    )


def update_imbalance(grid: BlockGrid, only_nonempty: bool = True) -> Dict[str, float]:
    """Imbalance statistics of a grid's per-block update counts.

    Parameters
    ----------
    grid:
        The grid after a training run.
    only_nonempty:
        Ignore blocks containing no ratings (they are never scheduled).

    Returns
    -------
    dict
        ``mean``, ``std``, ``min``, ``max``, ``cv`` (coefficient of
        variation) and ``gini`` of the update counts.
    """
    counts = grid.update_counts().astype(np.float64).ravel()
    if only_nonempty:
        nnz = grid.nnz_matrix().ravel()
        counts = counts[nnz > 0]
    if len(counts) == 0:
        raise ReproError("the grid has no (non-empty) blocks")
    mean = float(counts.mean())
    std = float(counts.std())
    return {
        "mean": mean,
        "std": std,
        "min": float(counts.min()),
        "max": float(counts.max()),
        "cv": std / mean if mean > 0 else 0.0,
        "gini": gini_coefficient(counts),
    }
