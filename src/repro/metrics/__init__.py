"""Evaluation metrics and reporting helpers.

* :mod:`repro.metrics.evaluation` — convergence/quality metrics over
  traces and models (time-to-target, speedups);
* :mod:`repro.metrics.imbalance` — per-block update-count statistics
  quantifying the imbalance phenomenon of the paper's Example 3;
* :mod:`repro.metrics.reporting` — plain-text tables used by the
  experiment harness and the CLI.
"""

from .evaluation import relative_speedup, summarize_convergence, time_to_target
from .imbalance import gini_coefficient, update_imbalance
from .reporting import format_curve, format_table

__all__ = [
    "relative_speedup",
    "summarize_convergence",
    "time_to_target",
    "gini_coefficient",
    "update_imbalance",
    "format_curve",
    "format_table",
]
