"""Grid banding and block extraction for block-parallel SGD.

FPSGD-style algorithms (Section III-A of the paper) divide the rating
matrix into a grid of blocks along row and column boundaries.  Two blocks
are *independent* if they share neither a row band nor a column band; only
independent blocks may be updated concurrently.

This module provides the low-level machinery:

* boundary computation — either uniform in index space
  (:func:`uniform_boundaries`) or balanced by nonzero count
  (:func:`balanced_boundaries`), the latter being important for skewed
  real-world matrices where uniform index bands would produce wildly
  different block sizes;
* :func:`extract_grid` — a single ``O(nnz log nnz)`` pass that buckets
  every rating into its ``(row_band, col_band)`` cell and returns per-cell
  index arrays, used by schedulers to hand contiguous work units to
  workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import InvalidPartitionError
from .matrix import SparseRatingMatrix


@dataclass(frozen=True)
class BlockSlice:
    """Index data for one grid block.

    Attributes
    ----------
    row_band:
        Index of the row band (0-based, top to bottom).
    col_band:
        Index of the column band (0-based, left to right).
    row_range:
        Half-open user-index interval ``[start, stop)`` covered by the band.
    col_range:
        Half-open item-index interval ``[start, stop)`` covered by the band.
    indices:
        Positions (into the matrix's COO arrays) of the ratings that fall
        inside this block, sorted ascending.
    """

    row_band: int
    col_band: int
    row_range: Tuple[int, int]
    col_range: Tuple[int, int]
    indices: np.ndarray

    @property
    def nnz(self) -> int:
        """Number of ratings inside the block."""
        return len(self.indices)

    def __repr__(self) -> str:
        return (
            f"BlockSlice(row_band={self.row_band}, col_band={self.col_band}, "
            f"nnz={self.nnz})"
        )


def _validate_boundaries(boundaries: Sequence[int], extent: int, axis: str) -> np.ndarray:
    """Check that ``boundaries`` is a valid monotone cover of ``[0, extent]``."""
    bounds = np.asarray(boundaries, dtype=np.int64)
    if bounds.ndim != 1 or len(bounds) < 2:
        raise InvalidPartitionError(
            f"{axis} boundaries must contain at least two entries, got {bounds!r}"
        )
    if bounds[0] != 0 or bounds[-1] != extent:
        raise InvalidPartitionError(
            f"{axis} boundaries must start at 0 and end at {extent}, got "
            f"[{bounds[0]}, ..., {bounds[-1]}]"
        )
    if np.any(np.diff(bounds) <= 0):
        raise InvalidPartitionError(
            f"{axis} boundaries must be strictly increasing, got {bounds.tolist()}"
        )
    return bounds


def uniform_boundaries(extent: int, parts: int) -> np.ndarray:
    """Split ``[0, extent)`` into ``parts`` near-equal index bands.

    Returns ``parts + 1`` boundary positions.  This is the division used
    by FPSGD/HSGD, where every band spans the same number of *rows or
    columns* (not the same number of ratings).
    """
    if parts <= 0:
        raise InvalidPartitionError(f"parts must be positive, got {parts}")
    if extent < parts:
        raise InvalidPartitionError(
            f"cannot split extent {extent} into {parts} non-empty bands"
        )
    bounds = np.linspace(0, extent, parts + 1)
    bounds = np.round(bounds).astype(np.int64)
    # Rounding can occasionally merge adjacent boundaries on tiny extents;
    # repair by forcing strict monotonicity forwards then backwards.
    for i in range(1, len(bounds)):
        if bounds[i] <= bounds[i - 1]:
            bounds[i] = bounds[i - 1] + 1
    if bounds[-1] != extent:
        bounds[-1] = extent
        for i in range(len(bounds) - 2, 0, -1):
            if bounds[i] >= bounds[i + 1]:
                bounds[i] = bounds[i + 1] - 1
    return _validate_boundaries(bounds, extent, "uniform")


def balanced_boundaries(counts: np.ndarray, parts: int) -> np.ndarray:
    """Split an axis into ``parts`` bands carrying near-equal rating counts.

    Parameters
    ----------
    counts:
        Per-index rating counts along the axis (``row_counts()`` or
        ``col_counts()`` of a matrix).
    parts:
        Number of bands.

    Returns
    -------
    numpy.ndarray
        ``parts + 1`` boundary positions over ``[0, len(counts)]`` such
        that each band contains approximately ``sum(counts)/parts``
        ratings.  Real-world rating matrices are heavily skewed, so this
        balancing is what makes the nonuniform division of the paper
        assign comparable work to equally capable workers.
    """
    counts = np.asarray(counts, dtype=np.int64)
    extent = len(counts)
    if parts <= 0:
        raise InvalidPartitionError(f"parts must be positive, got {parts}")
    if extent < parts:
        raise InvalidPartitionError(
            f"cannot split {extent} indices into {parts} non-empty bands"
        )
    total = int(counts.sum())
    if total == 0:
        return uniform_boundaries(extent, parts)

    cumulative = np.concatenate(([0], np.cumsum(counts)))
    targets = np.linspace(0, total, parts + 1)
    bounds = np.searchsorted(cumulative, targets, side="left").astype(np.int64)
    bounds[0] = 0
    bounds[-1] = extent
    # Enforce strict monotonicity so no band is empty in index space.
    for i in range(1, parts):
        if bounds[i] <= bounds[i - 1]:
            bounds[i] = bounds[i - 1] + 1
    for i in range(parts - 1, 0, -1):
        if bounds[i] >= bounds[i + 1]:
            bounds[i] = bounds[i + 1] - 1
    return _validate_boundaries(bounds, extent, "balanced")


def extract_grid(
    matrix: SparseRatingMatrix,
    row_boundaries: Sequence[int],
    col_boundaries: Sequence[int],
) -> List[List[BlockSlice]]:
    """Bucket every rating of ``matrix`` into a grid of blocks.

    Parameters
    ----------
    matrix:
        The rating matrix.
    row_boundaries, col_boundaries:
        Monotone boundary arrays covering ``[0, m]`` and ``[0, n]``.

    Returns
    -------
    list of list of BlockSlice
        ``grid[i][j]`` holds the block for row band ``i`` and column band
        ``j``.  Every rating appears in exactly one block.

    Notes
    -----
    The implementation performs a single vectorised bucketing pass
    (two ``searchsorted`` calls plus one ``argsort``) rather than one mask
    per block, keeping grid construction cheap even for fine grids.
    """
    row_bounds = _validate_boundaries(row_boundaries, matrix.n_rows, "row")
    col_bounds = _validate_boundaries(col_boundaries, matrix.n_cols, "column")

    n_row_bands = len(row_bounds) - 1
    n_col_bands = len(col_bounds) - 1

    row_band_of = np.searchsorted(row_bounds, matrix.rows, side="right") - 1
    col_band_of = np.searchsorted(col_bounds, matrix.cols, side="right") - 1
    flat = row_band_of * n_col_bands + col_band_of

    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    # Split points between consecutive cells in the flattened ordering.
    cell_starts = np.searchsorted(
        sorted_flat, np.arange(n_row_bands * n_col_bands), side="left"
    )
    cell_stops = np.searchsorted(
        sorted_flat, np.arange(n_row_bands * n_col_bands), side="right"
    )

    grid: List[List[BlockSlice]] = []
    for i in range(n_row_bands):
        row_blocks: List[BlockSlice] = []
        for j in range(n_col_bands):
            cell = i * n_col_bands + j
            indices = np.sort(order[cell_starts[cell]:cell_stops[cell]])
            row_blocks.append(
                BlockSlice(
                    row_band=i,
                    col_band=j,
                    row_range=(int(row_bounds[i]), int(row_bounds[i + 1])),
                    col_range=(int(col_bounds[j]), int(col_bounds[j + 1])),
                    indices=indices,
                )
            )
        grid.append(row_blocks)
    return grid


def grid_nnz(grid: List[List[BlockSlice]]) -> np.ndarray:
    """Return a 2-D array of per-block rating counts for a grid."""
    return np.array([[block.nnz for block in row] for row in grid], dtype=np.int64)
