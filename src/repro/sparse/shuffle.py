"""Permutation helpers used for calibration-data preparation.

Section V-A of the paper prepares training data for the cost models by
shuffling the input dataset ("to avoid uneven data distribution") and then
taking cumulative prefixes ``S_1, S_1+S_2, ..., S_1+...+S_N`` of equal-size
segments.  These helpers implement both steps deterministically.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import InvalidMatrixError
from .matrix import SparseRatingMatrix


def shuffled_copy(matrix: SparseRatingMatrix, seed: int = 0) -> SparseRatingMatrix:
    """Return a copy of ``matrix`` with its storage order permuted.

    Equivalent to :meth:`SparseRatingMatrix.shuffled`; provided as a free
    function so calibration code can operate on matrices without caring
    whether the container exposes the method.
    """
    return matrix.shuffled(seed=seed)


def split_prefix_sums(
    matrix: SparseRatingMatrix, segments: int
) -> List[SparseRatingMatrix]:
    """Return cumulative prefixes of ``matrix`` split into ``segments`` parts.

    The matrix is divided into ``segments`` equal contiguous chunks
    ``S_1..S_N`` (in storage order) and the returned list contains the
    cumulative unions ``S_1``, ``S_1+S_2``, ..., ``S_1+...+S_N`` — exactly
    the calibration workloads of Algorithm 3 line 1-2.  Callers should
    shuffle the matrix first so every prefix is an unbiased sample.

    Raises
    ------
    InvalidMatrixError
        If ``segments`` is not positive or exceeds the number of ratings.
    """
    if segments <= 0:
        raise InvalidMatrixError(f"segments must be positive, got {segments}")
    if segments > matrix.nnz:
        raise InvalidMatrixError(
            f"cannot split {matrix.nnz} ratings into {segments} segments"
        )
    boundaries = np.linspace(0, matrix.nnz, segments + 1).round().astype(int)
    prefixes = []
    for stop in boundaries[1:]:
        prefixes.append(matrix.prefix(int(stop)))
    return prefixes
