"""Append-only COO sparse rating matrix.

The rating matrix of the paper (Section II-A) is a sparse matrix
``R in R^{m x n}`` whose explicit entries are ratings ``r_{u,v}``.  The
paper stores it "in the form of triadic tuple"; we mirror that with three
parallel numpy arrays ``rows``, ``cols``, ``vals``.

The container is *append-only*: schedulers and simulation runs share a
single matrix object, block extraction returns index views into the same
arrays instead of copying ratings, and the only permitted mutation is
:meth:`SparseRatingMatrix.append` — new ratings (and dimension growth
for new users/items) are added at the end of the arrays, never changing
or reordering the existing triples.  Every mutation bumps
:attr:`SparseRatingMatrix.version` so derived caches (the CSR rows
cached here, the :class:`~repro.sparse.blockstore.BlockStore` records)
can detect staleness instead of silently serving pre-append state.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..exceptions import InvalidMatrixError


class SparseRatingMatrix:
    """A sparse user-item rating matrix stored in COO (triple) form.

    Parameters
    ----------
    rows:
        Integer array of user (row) indices, one per rating.
    cols:
        Integer array of item (column) indices, one per rating.
    vals:
        Float array of rating values, one per rating.
    shape:
        Optional explicit ``(m, n)``.  When omitted the shape is inferred
        as one plus the maximum index in each dimension.
    check:
        When ``True`` (default) the constructor validates lengths, dtypes
        and index ranges and raises :class:`InvalidMatrixError` on failure.

    Notes
    -----
    The arrays are copied into contiguous, canonical dtypes
    (``int64`` indices, ``float64`` values) and marked read-only, so a
    matrix can be shared freely between schedulers, workers and metrics
    without defensive copying.  :meth:`append` replaces the arrays
    wholesale (existing triples first, bitwise unchanged) rather than
    writing into them, so views handed out earlier stay valid snapshots.
    """

    __slots__ = ("_rows", "_cols", "_vals", "_m", "_n", "_csr", "_version")

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: Optional[Tuple[int, int]] = None,
        check: bool = True,
    ) -> None:
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        vals = np.ascontiguousarray(vals, dtype=np.float64)

        if check:
            if rows.ndim != 1 or cols.ndim != 1 or vals.ndim != 1:
                raise InvalidMatrixError("rows, cols and vals must be 1-D arrays")
            if not (len(rows) == len(cols) == len(vals)):
                raise InvalidMatrixError(
                    f"coordinate arrays must have equal length, got "
                    f"{len(rows)}, {len(cols)}, {len(vals)}"
                )

        if shape is None:
            if len(rows) == 0:
                raise InvalidMatrixError(
                    "shape must be given explicitly for an empty matrix"
                )
            m = int(rows.max()) + 1
            n = int(cols.max()) + 1
        else:
            m, n = int(shape[0]), int(shape[1])

        if check:
            if m <= 0 or n <= 0:
                raise InvalidMatrixError(f"shape must be positive, got ({m}, {n})")
            if len(rows) > 0:
                if rows.min() < 0 or rows.max() >= m:
                    raise InvalidMatrixError(
                        f"row indices must lie in [0, {m}), got range "
                        f"[{rows.min()}, {rows.max()}]"
                    )
                if cols.min() < 0 or cols.max() >= n:
                    raise InvalidMatrixError(
                        f"column indices must lie in [0, {n}), got range "
                        f"[{cols.min()}, {cols.max()}]"
                    )
            if not np.all(np.isfinite(vals)):
                raise InvalidMatrixError("rating values must be finite")

        for array in (rows, cols, vals):
            array.setflags(write=False)

        self._rows = rows
        self._cols = cols
        self._vals = vals
        self._m = m
        self._n = n
        self._csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._version = 0

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> np.ndarray:
        """Read-only array of row (user) indices."""
        return self._rows

    @property
    def cols(self) -> np.ndarray:
        """Read-only array of column (item) indices."""
        return self._cols

    @property
    def vals(self) -> np.ndarray:
        """Read-only array of rating values."""
        return self._vals

    @property
    def shape(self) -> Tuple[int, int]:
        """``(m, n)`` — number of users and items."""
        return (self._m, self._n)

    @property
    def n_rows(self) -> int:
        """Number of users ``m``."""
        return self._m

    @property
    def n_cols(self) -> int:
        """Number of items ``n``."""
        return self._n

    @property
    def nnz(self) -> int:
        """Number of explicit ratings."""
        return len(self._vals)

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every :meth:`append`.

        Derived caches (the CSR rows of :meth:`csr_rows`, the
        :class:`~repro.sparse.blockstore.BlockStore` block records)
        remember the version they were built against and rebuild when it
        moves, so no consumer can silently keep serving pre-append state.
        """
        return self._version

    @property
    def density(self) -> float:
        """Fraction of cells that carry an explicit rating."""
        return self.nnz / float(self._m * self._n)

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:
        return (
            f"SparseRatingMatrix(shape=({self._m}, {self._n}), "
            f"nnz={self.nnz}, density={self.density:.2e})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseRatingMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self._rows, other._rows)
            and np.array_equal(self._cols, other._cols)
            and np.array_equal(self._vals, other._vals)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def rating_mean(self) -> float:
        """Mean of all explicit ratings (0.0 for an empty matrix)."""
        if self.nnz == 0:
            return 0.0
        return float(self._vals.mean())

    def rating_std(self) -> float:
        """Standard deviation of all explicit ratings."""
        if self.nnz == 0:
            return 0.0
        return float(self._vals.std())

    def row_counts(self) -> np.ndarray:
        """Number of ratings per user, as an ``(m,)`` int array."""
        return np.bincount(self._rows, minlength=self._m).astype(np.int64)

    def col_counts(self) -> np.ndarray:
        """Number of ratings per item, as an ``(n,)`` int array."""
        return np.bincount(self._cols, minlength=self._n).astype(np.int64)

    def csr_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-user item lists in CSR layout: ``(indptr, indices)``.

        ``indices[indptr[u]:indptr[u + 1]]`` are the (sorted, read-only)
        item ids user ``u`` has rated.  The serving layer uses these rows
        to exclude already-rated items from top-K candidates
        (:class:`repro.serve.Scorer`); the sorted order is what lets the
        scorer ``searchsorted`` a user's seen items per item chunk.

        Computed lazily and cached on the matrix; the cache is
        invalidated by :meth:`append` (any mutation), so the rows always
        reflect every rating ingested so far — a stale CSR would
        silently mis-exclude (or fail to exclude) items in the serving
        layer.
        """
        if self._csr is None:
            order = np.lexsort((self._cols, self._rows))
            indices = self._cols[order]
            counts = np.bincount(self._rows, minlength=self._m)
            indptr = np.zeros(self._m + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices.setflags(write=False)
            indptr.setflags(write=False)
            self._csr = (indptr, indices)
        return self._csr

    def items_of(self, user: int) -> np.ndarray:
        """The sorted item ids rated by ``user`` (a read-only CSR row)."""
        if not 0 <= user < self._m:
            raise InvalidMatrixError(
                f"user index {user} outside [0, {self._m})"
            )
        indptr, indices = self.csr_rows()
        return indices[indptr[user] : indptr[user + 1]]

    def rating_range(self) -> Tuple[float, float]:
        """``(min, max)`` of the explicit ratings."""
        if self.nnz == 0:
            return (0.0, 0.0)
        return (float(self._vals.min()), float(self._vals.max()))

    # ------------------------------------------------------------------ #
    # Mutation (append-only: the streaming ingestion path)
    # ------------------------------------------------------------------ #
    def append(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        n_rows: Optional[int] = None,
        n_cols: Optional[int] = None,
    ) -> int:
        """Append new ratings in place, growing ``(m, n)`` as needed.

        This is the data-plane half of streaming ingestion
        (:mod:`repro.stream`): production traffic arrives as new triples
        — possibly referencing brand-new users or items — and the live
        matrix absorbs them without a rebuild.

        Parameters
        ----------
        rows, cols, vals:
            The new ratings as parallel coordinate arrays (empty arrays
            are allowed, e.g. for pure dimension growth).
        n_rows, n_cols:
            Optional explicit new dimensions.  Dimensions only ever
            grow: the effective new shape is the maximum of the current
            shape, one plus the largest appended index, and these
            arguments; asking for a dimension *smaller* than the current
            one raises :class:`InvalidMatrixError`.

        Returns
        -------
        int
            The number of ratings appended.

        Notes
        -----
        The pre-existing triples are preserved bitwise and keep their
        storage positions — appended ratings strictly follow them — so
        index-based views (grid blocks, splits) taken earlier remain
        valid descriptions of the old ratings.  Every call bumps
        :attr:`version` and invalidates the cached CSR rows
        (:meth:`csr_rows`), which is what keeps the serving layer's
        seen-item exclusion and the block store's records from going
        stale.
        """
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        vals = np.ascontiguousarray(vals, dtype=np.float64)
        if rows.ndim != 1 or cols.ndim != 1 or vals.ndim != 1:
            raise InvalidMatrixError("rows, cols and vals must be 1-D arrays")
        if not (len(rows) == len(cols) == len(vals)):
            raise InvalidMatrixError(
                f"coordinate arrays must have equal length, got "
                f"{len(rows)}, {len(cols)}, {len(vals)}"
            )
        if len(vals) > 0 and not np.all(np.isfinite(vals)):
            raise InvalidMatrixError("rating values must be finite")
        if len(rows) > 0 and (rows.min() < 0 or cols.min() < 0):
            raise InvalidMatrixError("appended indices must be non-negative")
        for name, requested, current in (
            ("n_rows", n_rows, self._m),
            ("n_cols", n_cols, self._n),
        ):
            if requested is not None and requested < current:
                raise InvalidMatrixError(
                    f"dimensions never shrink: requested {name}={requested} "
                    f"below the current {current}"
                )
        new_m = max(
            self._m,
            int(rows.max()) + 1 if len(rows) else 0,
            int(n_rows) if n_rows is not None else 0,
        )
        new_n = max(
            self._n,
            int(cols.max()) + 1 if len(cols) else 0,
            int(n_cols) if n_cols is not None else 0,
        )
        if len(rows) > 0:
            merged_rows = np.concatenate([self._rows, rows])
            merged_cols = np.concatenate([self._cols, cols])
            merged_vals = np.concatenate([self._vals, vals])
            for array in (merged_rows, merged_cols, merged_vals):
                array.setflags(write=False)
            self._rows = merged_rows
            self._cols = merged_cols
            self._vals = merged_vals
        self._m = new_m
        self._n = new_n
        # Any mutation invalidates derived caches: a stale CSR would
        # silently mis-exclude rated items in the serving layer, and a
        # stale BlockStore would train on pre-append data.
        self._csr = None
        self._version += 1
        return len(vals)

    def append_triples(self, triples) -> int:
        """Append an iterable of ``(u, v, r)`` triples (see :meth:`append`)."""
        triples = list(triples)
        rows = np.array([t[0] for t in triples], dtype=np.int64)
        cols = np.array([t[1] for t in triples], dtype=np.int64)
        vals = np.array([t[2] for t in triples], dtype=np.float64)
        return self.append(rows, cols, vals)

    # ------------------------------------------------------------------ #
    # Transformations (all return new matrices; self is never mutated)
    # ------------------------------------------------------------------ #
    def iter_triples(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(u, v, r_uv)`` triples in storage order."""
        for u, v, r in zip(self._rows, self._cols, self._vals):
            yield int(u), int(v), float(r)

    def select(self, index: np.ndarray) -> "SparseRatingMatrix":
        """Return a new matrix containing the ratings at ``index``.

        The shape is preserved, so the result remains addressable with the
        same row/column bands as the original.
        """
        index = np.asarray(index)
        return SparseRatingMatrix(
            self._rows[index],
            self._cols[index],
            self._vals[index],
            shape=self.shape,
            check=False,
        )

    def shuffled(self, seed: int = 0) -> "SparseRatingMatrix":
        """Return a copy whose triples are stored in random order.

        Shuffling the storage order is the first step of the calibration
        data preparation (Section V-A) — it avoids uneven data
        distribution when the prefix subsets ``S_1, S_1+S_2, ...`` are
        taken from the front of the array.
        """
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.nnz)
        return self.select(perm)

    def sample(self, fraction: float, seed: int = 0) -> "SparseRatingMatrix":
        """Return a uniformly sampled subset containing ``fraction`` of ratings."""
        if not 0.0 < fraction <= 1.0:
            raise InvalidMatrixError(
                f"sample fraction must be in (0, 1], got {fraction}"
            )
        rng = np.random.default_rng(seed)
        size = max(1, int(round(self.nnz * fraction)))
        index = rng.choice(self.nnz, size=size, replace=False)
        return self.select(np.sort(index))

    def prefix(self, count: int) -> "SparseRatingMatrix":
        """Return the first ``count`` ratings in storage order."""
        if count < 0 or count > self.nnz:
            raise InvalidMatrixError(
                f"prefix count must be in [0, {self.nnz}], got {count}"
            )
        return self.select(np.arange(count))

    def row_band(self, row_start: int, row_stop: int) -> "SparseRatingMatrix":
        """Return the ratings whose user index lies in ``[row_start, row_stop)``.

        Used to split the matrix into the GPU band ``Rg`` and the CPU band
        ``Rc`` (Figure 9).  The shape is preserved.
        """
        if not 0 <= row_start <= row_stop <= self._m:
            raise InvalidMatrixError(
                f"row band [{row_start}, {row_stop}) outside [0, {self._m}]"
            )
        mask = (self._rows >= row_start) & (self._rows < row_stop)
        return self.select(np.nonzero(mask)[0])

    def col_band(self, col_start: int, col_stop: int) -> "SparseRatingMatrix":
        """Return the ratings whose item index lies in ``[col_start, col_stop)``."""
        if not 0 <= col_start <= col_stop <= self._n:
            raise InvalidMatrixError(
                f"column band [{col_start}, {col_stop}) outside [0, {self._n}]"
            )
        mask = (self._cols >= col_start) & (self._cols < col_stop)
        return self.select(np.nonzero(mask)[0])

    def transpose(self) -> "SparseRatingMatrix":
        """Return the transposed matrix (users and items swapped)."""
        return SparseRatingMatrix(
            self._cols, self._rows, self._vals, shape=(self._n, self._m), check=False
        )

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense array with zeros for missing cells.

        Intended for tests and tiny examples only; raises for matrices with
        more than ten million cells to prevent accidental memory blow-ups.
        """
        cells = self._m * self._n
        if cells > 10_000_000:
            raise InvalidMatrixError(
                f"refusing to densify a matrix with {cells} cells"
            )
        dense = np.zeros((self._m, self._n), dtype=np.float64)
        dense[self._rows, self._cols] = self._vals
        return dense

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_triples(
        cls,
        triples,
        shape: Optional[Tuple[int, int]] = None,
    ) -> "SparseRatingMatrix":
        """Build a matrix from an iterable of ``(u, v, r)`` triples."""
        triples = list(triples)
        if not triples and shape is None:
            raise InvalidMatrixError(
                "shape must be given explicitly for an empty matrix"
            )
        rows = np.array([t[0] for t in triples], dtype=np.int64)
        cols = np.array([t[1] for t in triples], dtype=np.int64)
        vals = np.array([t[2] for t in triples], dtype=np.float64)
        return cls(rows, cols, vals, shape=shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseRatingMatrix":
        """Build a matrix from a dense array, treating zeros as missing."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise InvalidMatrixError("dense input must be 2-D")
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], shape=dense.shape)
