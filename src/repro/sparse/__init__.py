"""Sparse rating-matrix substrate.

The paper operates on a sparse user-item rating matrix ``R`` stored as
triadic tuples ``(u, v, r_uv)``.  This subpackage provides:

* :class:`~repro.sparse.matrix.SparseRatingMatrix` — an immutable COO
  container with validation, shuffling, sampling and banding helpers;
* :mod:`repro.sparse.blocking` — extraction of grid blocks given row and
  column boundaries, plus nonzero-balanced boundary computation;
* :mod:`repro.sparse.blockstore` — the block-major data plane: per-block
  contiguous, band-local, validated-once rating arrays
  (:class:`BlockData`) cached per run (:class:`BlockStore`) so execution
  kernels never re-gather or re-validate COO index lists;
* :mod:`repro.sparse.io` — plain-text triple readers/writers compatible
  with the MovieLens/LIBMF layout;
* :mod:`repro.sparse.shuffle` — deterministic permutation utilities used
  by the calibration data preparation (Section V-A).
"""

from .matrix import SparseRatingMatrix
from .blocking import (
    BlockSlice,
    balanced_boundaries,
    extract_grid,
    uniform_boundaries,
)
from .blockstore import (
    BlockData,
    BlockStore,
    SharedBlockStore,
    SharedBlockStoreHandle,
    merge_block_data,
)
from .io import read_triples, write_triples
from .shuffle import shuffled_copy, split_prefix_sums

__all__ = [
    "SparseRatingMatrix",
    "BlockData",
    "BlockSlice",
    "BlockStore",
    "SharedBlockStore",
    "SharedBlockStoreHandle",
    "balanced_boundaries",
    "extract_grid",
    "merge_block_data",
    "uniform_boundaries",
    "read_triples",
    "write_triples",
    "shuffled_copy",
    "split_prefix_sums",
]
