"""Plain-text triple I/O for rating matrices.

The benchmark datasets used by the paper (MovieLens, Netflix, Yahoo R1,
Yahoo!Music) are distributed as text files with one rating per line.  We
support the common whitespace/comma separated ``user item rating`` layout
used by LIBMF and the MovieLens exports, which is sufficient for loading
scaled-down or user-provided data into the library.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple, Union

import numpy as np

from ..exceptions import DatasetError
from .matrix import SparseRatingMatrix

PathLike = Union[str, os.PathLike]


def read_triples(
    path: PathLike,
    delimiter: Optional[str] = None,
    one_based: bool = False,
    shape: Optional[Tuple[int, int]] = None,
) -> SparseRatingMatrix:
    """Read a rating matrix from a text file of ``user item rating`` lines.

    Parameters
    ----------
    path:
        File to read.  Lines starting with ``#`` or ``%`` are ignored.
    delimiter:
        Field separator; ``None`` splits on arbitrary whitespace, and a
        comma handles MovieLens-style CSV exports.  Extra trailing fields
        (e.g. timestamps) are ignored.
    one_based:
        Set when user/item ids start at 1 (MovieLens, Netflix); indices are
        shifted down to 0-based.
    shape:
        Optional explicit matrix shape.

    Raises
    ------
    DatasetError
        If the file does not exist, is empty, or a line cannot be parsed.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise DatasetError(f"rating file not found: {path}")

    users = []
    items = []
    ratings = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            fields = line.split(delimiter) if delimiter else line.split()
            if len(fields) < 3:
                raise DatasetError(
                    f"{path}:{line_number}: expected at least 3 fields, "
                    f"got {len(fields)}"
                )
            try:
                users.append(int(float(fields[0])))
                items.append(int(float(fields[1])))
                ratings.append(float(fields[2]))
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: could not parse rating triple: {exc}"
                ) from exc

    if not users:
        raise DatasetError(f"rating file contains no ratings: {path}")

    rows = np.asarray(users, dtype=np.int64)
    cols = np.asarray(items, dtype=np.int64)
    vals = np.asarray(ratings, dtype=np.float64)
    if one_based:
        rows = rows - 1
        cols = cols - 1
    return SparseRatingMatrix(rows, cols, vals, shape=shape)


def write_triples(
    matrix: SparseRatingMatrix,
    path: PathLike,
    delimiter: str = " ",
    one_based: bool = False,
) -> None:
    """Write a rating matrix as ``user item rating`` lines.

    The inverse of :func:`read_triples`; useful for exporting synthetic
    datasets so external tools (LIBMF, cuMF) can consume them.
    """
    path = os.fspath(path)
    offset = 1 if one_based else 0
    with open(path, "w", encoding="utf-8") as handle:
        for u, v, r in zip(matrix.rows, matrix.cols, matrix.vals):
            handle.write(
                f"{int(u) + offset}{delimiter}{int(v) + offset}{delimiter}{r:g}\n"
            )
