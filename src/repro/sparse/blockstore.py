"""Block-major data plane: per-block contiguous rating storage.

The grid machinery (:mod:`repro.sparse.blocking`, :mod:`repro.core.grid`)
describes blocks as *index lists* into the matrix's global COO arrays.
That is the right representation for partitioning — blocks share the
underlying storage — but the wrong one for execution: every task would
re-gather ``rows[indices]`` / ``cols[indices]`` / ``vals[indices]`` and
re-validate the result on every epoch, an ``O(nnz)`` tax per pass that
the FPSGD/LIBMF lineage explicitly avoids by keeping each block's
ratings resident and band-local.

This module materialises that layout once per run:

* :class:`BlockData` — one block's ratings as contiguous parallel
  arrays, in both global coordinates (``rows``/``cols``) and *band-local*
  coordinates (``local_rows = rows - row_range[0]``, ``local_cols = cols
  - col_range[0]``), validated at construction so kernels can skip their
  own input checks (``validate=False``);
* :class:`BlockStore` — a per-run cache mapping grid blocks (and
  multi-block tasks) to their :class:`BlockData`, so each block is
  gathered and validated exactly once no matter how many epochs touch it.

Engines hand ``BlockData`` straight to
:func:`repro.sgd.kernels.sgd_block_minibatch_local`, which scatters into
band-slice views of ``P``/``Q`` using the local indices.  Every backend —
the simulator, the thread pool, and future process/GPU backends —
inherits the same data plane through
:func:`repro.exec.base.apply_task_updates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..exceptions import ExecutionError, InvalidMatrixError
from .matrix import SparseRatingMatrix


def _read_only(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


@dataclass(frozen=True)
class BlockData:
    """One block's ratings, gathered, band-localised and validated once.

    Attributes
    ----------
    row_range, col_range:
        Half-open global index intervals of the block's bands.  For a
        multi-block task this is the covering interval of its blocks'
        bands (band-local scatter only ever writes at ``range_start +
        local_index``, so a covering interval is exact even if the
        blocks do not tile it).
    rows, cols, vals:
        The ratings as contiguous parallel arrays in global coordinates
        (``int64``/``int64``/``float64``), in the same order as the
        originating ``indices`` array.
    local_rows, local_cols:
        Band-local coordinates: ``rows - row_range[0]`` and
        ``cols - col_range[0]``.

    All arrays are marked read-only: ``BlockData`` is shared across
    epochs and across worker threads.
    """

    row_range: Tuple[int, int]
    col_range: Tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    local_rows: np.ndarray
    local_cols: np.ndarray

    @property
    def nnz(self) -> int:
        """Number of ratings in the block."""
        return len(self.vals)

    @classmethod
    def from_arrays(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        row_range: Tuple[int, int],
        col_range: Tuple[int, int],
        copy: bool = True,
    ) -> "BlockData":
        """Build and validate a record from global-coordinate arrays.

        The record owns its arrays (they are marked read-only), so with
        ``copy=True`` (the default) inputs that already have the
        canonical dtype are copied rather than adopted — freezing a
        caller's array in place would be a surprising side effect.
        Internal callers that hand over freshly gathered arrays pass
        ``copy=False``.
        """
        original = (rows, cols, vals)
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        vals = np.ascontiguousarray(vals, dtype=np.float64)
        if copy:
            rows, cols, vals = (
                converted.copy() if converted is passed else converted
                for converted, passed in zip((rows, cols, vals), original)
            )
        if not (len(rows) == len(cols) == len(vals)):
            raise InvalidMatrixError("rows, cols and vals must have equal length")
        r0, r1 = int(row_range[0]), int(row_range[1])
        c0, c1 = int(col_range[0]), int(col_range[1])
        if r0 > r1 or c0 > c1 or r0 < 0 or c0 < 0:
            raise InvalidMatrixError(
                f"invalid block ranges rows=[{r0}, {r1}), cols=[{c0}, {c1})"
            )
        if len(rows) > 0:
            if rows.min() < r0 or rows.max() >= r1:
                raise InvalidMatrixError(
                    f"block rating rows [{rows.min()}, {rows.max()}] fall "
                    f"outside the row band [{r0}, {r1})"
                )
            if cols.min() < c0 or cols.max() >= c1:
                raise InvalidMatrixError(
                    f"block rating columns [{cols.min()}, {cols.max()}] fall "
                    f"outside the column band [{c0}, {c1})"
                )
        local_rows = rows - r0
        local_cols = cols - c0
        return cls(
            row_range=(r0, r1),
            col_range=(c0, c1),
            rows=_read_only(rows),
            cols=_read_only(cols),
            vals=_read_only(vals),
            local_rows=_read_only(local_rows),
            local_cols=_read_only(local_cols),
        )

    @classmethod
    def from_slice(cls, matrix: SparseRatingMatrix, block) -> "BlockData":
        """Materialise a grid block of ``matrix`` into contiguous arrays.

        ``block`` is anything with ``indices``, ``row_range`` and
        ``col_range`` attributes — a
        :class:`~repro.sparse.blocking.BlockSlice` or a
        :class:`~repro.core.grid.GridBlock`.
        """
        indices = np.asarray(block.indices, dtype=np.int64)
        if len(indices) > 0 and (
            indices.min() < 0 or indices.max() >= matrix.nnz
        ):
            raise InvalidMatrixError(
                f"block indices [{indices.min()}, {indices.max()}] outside "
                f"the matrix's {matrix.nnz} ratings"
            )
        return cls.from_arrays(
            matrix.rows[indices],
            matrix.cols[indices],
            matrix.vals[indices],
            block.row_range,
            block.col_range,
            copy=False,
        )

    def __repr__(self) -> str:
        return (
            f"BlockData(rows={self.row_range}, cols={self.col_range}, "
            f"nnz={self.nnz})"
        )


def _covering_range(ranges) -> Tuple[int, int]:
    starts, stops = zip(*ranges)
    return (min(starts), max(stops))


def merge_block_data(parts: List[BlockData]) -> BlockData:
    """Concatenate several blocks' records into one multi-block record.

    Used for multi-block GPU tasks: parts are concatenated in block order
    (matching ``Task.indices()``) under the covering band interval.  Both
    the in-process :class:`BlockStore` and the worker-side
    :class:`SharedBlockStore` cache the merged record, so the
    concatenation happens once per distinct task, not per epoch.
    """
    return BlockData.from_arrays(
        np.concatenate([part.rows for part in parts]),
        np.concatenate([part.cols for part in parts]),
        np.concatenate([part.vals for part in parts]),
        _covering_range([part.row_range for part in parts]),
        _covering_range([part.col_range for part in parts]),
        copy=False,
    )


class BlockStore:
    """Per-run cache of :class:`BlockData` records for a matrix.

    One store is created per engine run.  Blocks are materialised lazily
    on first use and reused for every later epoch; multi-block tasks
    (a GPU's "large block" column of Figure 9) get one concatenated
    record cached under the tuple of their blocks' grid cells, so the
    per-epoch cost of the data plane is zero after the first pass.

    Thread-safety: records are immutable and the cache dictionaries are
    only mutated by interpreter-atomic ``dict.setdefault``; in the worst
    case two worker threads materialise the same block concurrently and
    one identical record is dropped — a benign race the threaded engine
    accepts instead of serialising its first epoch behind a lock.
    """

    def __init__(self, matrix: SparseRatingMatrix) -> None:
        self._matrix = matrix
        self._version = matrix.version
        self._blocks: Dict[Tuple[int, int], BlockData] = {}
        self._tasks: Dict[Tuple[Tuple[int, int], ...], BlockData] = {}

    @property
    def matrix(self) -> SparseRatingMatrix:
        """The rating matrix the store gathers from."""
        return self._matrix

    def _check_version(self) -> None:
        """Drop stale records after a matrix mutation.

        :meth:`SparseRatingMatrix.append` bumps the matrix's
        :attr:`~SparseRatingMatrix.version`; records gathered before the
        mutation describe the pre-append matrix (and a regrown grid's
        blocks would silently alias old cache keys), so the whole cache
        is invalidated and records re-materialise lazily against the
        current arrays.
        """
        version = self._matrix.version
        if version != self._version:
            self._blocks = {}
            self._tasks = {}
            self._version = version

    def block_data(self, block) -> BlockData:
        """The cached :class:`BlockData` of one grid block."""
        self._check_version()
        key = (block.row_band, block.col_band)
        data = self._blocks.get(key)
        if data is None:
            data = self._blocks.setdefault(
                key, BlockData.from_slice(self._matrix, block)
            )
        return data

    def task_data(self, task) -> BlockData:
        """The cached :class:`BlockData` covering all blocks of a task.

        Single-block tasks (every CPU task, every stolen block) share the
        per-block record; multi-block GPU tasks are concatenated in block
        order — matching ``Task.indices()`` — under the covering band
        interval.
        """
        blocks = task.blocks
        if len(blocks) == 1:
            return self.block_data(blocks[0])
        self._check_version()
        key = tuple((block.row_band, block.col_band) for block in blocks)
        data = self._tasks.get(key)
        if data is None:
            merged = merge_block_data([self.block_data(block) for block in blocks])
            data = self._tasks.setdefault(key, merged)
        return data

    def to_shared(self, blocks: Iterable) -> "SharedBlockStore":
        """Materialise ``blocks`` into a shared-memory segment.

        Gathers every given grid block, packs all five per-block arrays
        into one :class:`multiprocessing.shared_memory`-backed segment
        that worker processes attach by name
        (:meth:`SharedBlockStore.attach`) — the zero-copy data plane of
        the ``"processes"`` backend — and then **drops this store's
        private caches**: once the data lives in the segment, a second
        resident copy in the controller would double its memory for the
        whole run.  The caller owns the returned store's lifecycle:
        ``close()`` + ``unlink()`` when the run ends (see
        :class:`repro.shm.SharedSegment`).
        """
        shared = SharedBlockStore.create(
            [(block, self.block_data(block)) for block in blocks]
        )
        self.clear_cache()
        return shared

    def clear_cache(self) -> None:
        """Drop every cached record (they re-materialise lazily on use)."""
        self._blocks = {}
        self._tasks = {}

    def __repr__(self) -> str:
        return (
            f"BlockStore(nnz={self._matrix.nnz}, "
            f"cached_blocks={len(self._blocks)}, cached_tasks={len(self._tasks)})"
        )


#: The parallel arrays of one :class:`BlockData`, in segment layout order.
_SHARED_FIELDS = ("rows", "cols", "vals", "local_rows", "local_cols")
_SHARED_DTYPES = (np.int64, np.int64, np.float64, np.int64, np.int64)


@dataclass(frozen=True)
class SharedBlockStoreHandle:
    """Picklable descriptor of a shared block store.

    Everything a worker process needs to reconstruct zero-copy
    :class:`BlockData` views: the segment name, the total rating count
    (the segment holds five parallel ``nnz``-long arrays back to back)
    and, per block key, its slice ``[offset, offset + length)`` plus its
    band intervals.
    """

    segment: str
    nnz: int
    #: ``(row_band, col_band, offset, length, r0, r1, c0, c1)`` per block.
    entries: Tuple[Tuple[int, int, int, int, int, int, int, int], ...]


class SharedBlockStore:
    """Block-major rating arrays resident in shared memory.

    Two roles share this class:

    * the **owner** (built by :meth:`BlockStore.to_shared` in the
      controller process) creates the segment, copies every block's
      arrays in once, and must eventually ``close()`` and ``unlink()``;
    * **workers** :meth:`attach` by name and read the same physical
      pages — block lookups return :class:`BlockData` whose arrays are
      read-only views into the segment, so the per-epoch data-plane cost
      is zero and nothing is ever pickled or copied per task.

    Multi-block (GPU) task records are merged on first use and cached
    locally per process, exactly like :meth:`BlockStore.task_data`.
    """

    def __init__(self, segment, handle: SharedBlockStoreHandle) -> None:
        self._segment = segment
        self._handle = handle
        self._blocks: Dict[Tuple[int, int], BlockData] = {}
        self._tasks: Dict[Tuple[Tuple[int, int], ...], BlockData] = {}
        self._build_views()

    def _build_views(self) -> None:
        nnz = self._handle.nnz
        itemsize = 8  # int64 and float64 alike
        arrays = [
            self._segment.ndarray((nnz,), dtype, offset=index * nnz * itemsize)
            for index, dtype in enumerate(_SHARED_DTYPES)
        ]
        for row_band, col_band, offset, length, r0, r1, c0, c1 in self._handle.entries:
            views = [array[offset : offset + length] for array in arrays]
            for view in views:
                view.setflags(write=False)
            rows, cols, vals, local_rows, local_cols = views
            # Direct construction: the arrays were validated by
            # BlockData.from_slice when the owner materialised them, and
            # copying here would defeat the shared segment entirely.
            self._blocks[(row_band, col_band)] = BlockData(
                row_range=(r0, r1),
                col_range=(c0, c1),
                rows=rows,
                cols=cols,
                vals=vals,
                local_rows=local_rows,
                local_cols=local_cols,
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, materialised: List[Tuple[object, BlockData]]) -> "SharedBlockStore":
        """Pack materialised ``(block, BlockData)`` pairs into a segment."""
        from ..shm import SharedSegment

        if not materialised:
            raise ExecutionError("cannot share an empty block set")
        nnz = sum(data.nnz for _, data in materialised)
        if nnz <= 0:
            raise ExecutionError("cannot share a block set with no ratings")
        segment = SharedSegment.create(nnz * 8 * len(_SHARED_FIELDS), purpose="blocks")
        try:
            itemsize = 8
            arrays = [
                segment.ndarray((nnz,), dtype, offset=index * nnz * itemsize)
                for index, dtype in enumerate(_SHARED_DTYPES)
            ]
            entries = []
            offset = 0
            seen = set()
            for block, data in materialised:
                key = (int(block.row_band), int(block.col_band))
                if key in seen:
                    raise ExecutionError(f"duplicate grid block {key} in shared store")
                seen.add(key)
                for array, name in zip(arrays, _SHARED_FIELDS):
                    array[offset : offset + data.nnz] = getattr(data, name)
                entries.append(
                    key
                    + (offset, data.nnz)
                    + tuple(int(x) for x in data.row_range)
                    + tuple(int(x) for x in data.col_range)
                )
                offset += data.nnz
            del arrays
            handle = SharedBlockStoreHandle(
                segment=segment.name, nnz=nnz, entries=tuple(entries)
            )
            return cls(segment, handle)
        except BaseException:
            segment.unlink()
            raise

    @classmethod
    def attach(cls, handle: SharedBlockStoreHandle) -> "SharedBlockStore":
        """Map an owner's segment in a worker process (no copies)."""
        from ..shm import SharedSegment

        return cls(SharedSegment.attach(handle.segment), handle)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def handle(self) -> SharedBlockStoreHandle:
        """The picklable descriptor workers attach with."""
        return self._handle

    def block_data(self, key: Tuple[int, int]) -> BlockData:
        """The shared-memory record of one grid block ``(row_band, col_band)``."""
        try:
            return self._blocks[key]
        except KeyError:
            raise ExecutionError(
                f"grid block {key} is not part of this shared store"
            ) from None

    def task_data(self, keys: Tuple[Tuple[int, int], ...]) -> BlockData:
        """The record covering a task given its blocks' grid keys.

        Single-block tasks are served straight from the segment;
        multi-block tasks are merged once per distinct key tuple and
        cached in *private* memory (a per-process, per-run cost — the
        per-epoch hot path stays zero-copy).
        """
        if len(keys) == 1:
            return self.block_data(keys[0])
        keys = tuple(keys)
        data = self._tasks.get(keys)
        if data is None:
            data = merge_block_data([self.block_data(key) for key in keys])
            self._tasks[keys] = data
        return data

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop every view and this process's mapping (idempotent)."""
        # The BlockData views pin the segment's buffer; release them
        # before closing or SharedMemory.close() refuses.
        self._blocks = {}
        self._tasks = {}
        self._segment.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side only; implies :meth:`close`)."""
        self.close()
        self._segment.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedBlockStore(segment={self._handle.segment!r}, "
            f"nnz={self._handle.nnz}, blocks={len(self._blocks)})"
        )
