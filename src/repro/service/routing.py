"""Consistent-hash user -> reader-shard routing.

Every reader process keeps a per-``(model_version, user)`` slate cache
(:class:`~repro.serve.RecommendationService`), so the routing layer's
one job is **cache affinity**: the same user must land on the same
reader, request after request, or every reader ends up with a cold copy
of every hot user.  A plain ``user % workers`` would do that — until the
pool changes size, at which point *every* user remaps and the whole
cache tier goes cold at once (exactly when the system is already
degraded by a reader death).

:class:`HashRing` is the classic fix: each shard owns ``replicas``
pseudo-random points on a 64-bit ring, and a user routes to the first
shard point at or after ``hash(user)``.  Removing a shard hands only
*its* arc (~``1/shards`` of the keyspace) to its successors; every other
user keeps its warm reader.  Hashes come from :func:`hashlib.blake2b`,
which is stable across processes and Python builds — unlike ``hash()``,
which is salted per process and would route every user differently in
every worker.

The ring is read-mostly and tiny (``shards x replicas`` points); lookup
is one :func:`bisect.bisect_right` over a sorted array.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

from ..exceptions import ReproError

#: Ring points per shard.  128 keeps the max/min shard-arc ratio within
#: ~25% for small pools while the ring stays a few KiB.
DEFAULT_REPLICAS = 128


def _hash64(key: str) -> int:
    """Stable 64-bit hash (process-independent, unlike ``hash()``)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring mapping integer user ids to shard ids."""

    def __init__(self, shards: Iterable[int], replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas <= 0:
            raise ReproError(f"replicas must be positive, got {replicas}")
        self._replicas = int(replicas)
        self._points: List[Tuple[int, int]] = []
        self._keys: List[int] = []
        self._shards: set = set()
        for shard in shards:
            self.add_shard(int(shard))
        if not self._shards:
            raise ReproError("a hash ring needs at least one shard")

    @property
    def shards(self) -> Tuple[int, ...]:
        """The live shard ids, sorted."""
        return tuple(sorted(self._shards))

    def _rebuild(self) -> None:
        self._points.sort()
        self._keys = [point for point, _ in self._points]

    def add_shard(self, shard: int) -> None:
        """Add a shard's replica points (idempotent)."""
        if shard in self._shards:
            return
        self._shards.add(shard)
        self._points.extend(
            (_hash64(f"shard-{shard}-replica-{replica}"), shard)
            for replica in range(self._replicas)
        )
        self._rebuild()

    def remove_shard(self, shard: int) -> None:
        """Drop a shard; only its arcs remap (to their ring successors)."""
        if shard not in self._shards:
            return
        if len(self._shards) == 1:
            raise ReproError("cannot remove the last shard from the ring")
        self._shards.discard(shard)
        self._points = [(point, s) for point, s in self._points if s != shard]
        self._rebuild()

    def route(self, user: int) -> int:
        """The shard owning ``user``'s ring position."""
        point = _hash64(f"user-{int(user)}")
        index = bisect.bisect_right(self._keys, point)
        if index == len(self._keys):  # wrap past the last point
            index = 0
        return self._points[index][1]

    def __len__(self) -> int:
        return len(self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(shards={self.shards}, replicas={self._replicas})"
