"""Minimal HTTP/1.1 over asyncio streams — the front door's wire format.

The service deliberately speaks hand-rolled HTTP/1.1 instead of pulling
in a framework: the request shapes are tiny (``GET`` with a query
string, JSON out), the event loop must own admission control *before*
any request body is read, and the repository's no-new-hard-deps rule
applies to the serving path exactly as it does to training.  What this
module implements is the small, honest subset the load generator and
every standard HTTP client need:

* request line + headers, with hard caps on line and header sizes so a
  misbehaving client cannot balloon the server's memory;
* ``Content-Length`` bodies (the only body framing the service accepts;
  chunked uploads are rejected with 411/400 rather than half-parsed);
* persistent connections (HTTP/1.1 keep-alive is the default; the load
  generator's closed-loop clients rely on it) with explicit
  ``Connection: close`` handling;
* JSON responses with correct ``Content-Length`` so clients can pipeline
  reads without sniffing for EOF.

Parsing is strict-but-small: anything malformed raises
:class:`ProtocolError`, which the server maps to a 400 and a closed
connection — never a traceback into the accept loop.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..exceptions import ReproError

#: Upper bound on any single header/request line, and on the number of
#: headers — the memory a client can pin before admission control runs.
MAX_LINE_BYTES = 8192
MAX_HEADERS = 64
MAX_BODY_BYTES = 1 << 20

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ReproError):
    """A request violated the HTTP subset the service speaks."""


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 semantics: persistent unless ``Connection: close``."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader) -> Optional[HttpRequest]:
    """Parse one request from an asyncio stream reader.

    Returns ``None`` on a clean EOF before any bytes (client closed a
    keep-alive connection between requests).  Raises
    :class:`ProtocolError` for malformed or oversized input; the caller
    answers 400 and closes.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if exc.partial == b"":
            return None
        raise ProtocolError("truncated request line") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request line exceeds the stream limit") from None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("request line exceeds the size cap")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(f"unsupported HTTP version {version!r}")

    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except Exception as exc:
            raise ProtocolError(f"truncated headers: {exc!r}") from None
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("header line exceeds the size cap")
        if line in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError("too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "transfer-encoding" in headers:
        raise ProtocolError("chunked transfer encoding is not supported")
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(
                f"bad content-length {headers['content-length']!r}"
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(f"content-length {length} outside [0, {MAX_BODY_BYTES}]")
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception as exc:
                raise ProtocolError(f"truncated body: {exc!r}") from None

    split = urlsplit(target)
    query = {key: values[-1] for key, values in parse_qs(split.query).items()}
    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    payload: Optional[dict] = None,
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one JSON response (headers + body) to raw bytes."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def read_response(reader) -> Tuple[int, Dict[str, str], Optional[dict]]:
    """Parse one response (client side — the load generator's half).

    Returns ``(status, headers, json_payload_or_None)``.  Raises
    :class:`ProtocolError` on anything malformed, including a peer that
    closed mid-response.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except Exception as exc:
        raise ProtocolError(f"connection lost reading status line: {exc!r}") from None
    parts = line.decode("latin-1").split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ProtocolError(f"malformed status line: {line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except Exception as exc:
            raise ProtocolError(f"truncated response headers: {exc!r}") from None
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed response header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    payload = None
    if length:
        try:
            body = await reader.readexactly(length)
        except Exception as exc:
            raise ProtocolError(f"truncated response body: {exc!r}") from None
        payload = json.loads(body.decode("utf-8"))
    return status, headers, payload
