"""Load generation against the HTTP front door — the benchmark's client.

Two generators, because they answer different questions:

* :func:`run_closed_loop` — N concurrent clients, each issuing its next
  request the moment the previous response lands.  Offered load adapts
  to the server, so this measures the **throughput ceiling**: the
  highest sustained request rate the service completes at a given
  concurrency.
* :func:`run_open_loop` — requests arrive on a fixed schedule at an
  **offered QPS**, regardless of how the server is doing (arrivals that
  find every connection busy open a new one).  This is the honest way to
  measure latency percentiles: a closed loop silently slows its own
  arrival rate exactly when the server struggles, hiding the tail —
  the classic coordinated-omission trap.  Driving an open loop at 2x
  the measured ceiling is also how the benchmark proves admission
  control works: the right outcome is a high 503 rate and a still-flat
  latency tail, never an unbounded queue.

Both run in a single asyncio loop over persistent connections speaking
the same :mod:`~repro.service.protocol` the server does, and produce a
:class:`LoadReport` with per-outcome counts and latency percentiles
over the successful requests.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .protocol import ProtocolError, read_response


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    duration_s: float
    offered_qps: Optional[float]
    requests: int = 0
    ok: int = 0
    rejected: int = 0
    expired: int = 0
    errors: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        """Completed-OK requests per second of wall clock."""
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.requests if self.requests else 0.0

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def as_dict(self) -> Dict[str, object]:
        return {
            "duration_s": round(self.duration_s, 4),
            "offered_qps": self.offered_qps,
            "achieved_qps": round(self.achieved_qps, 2),
            "requests": self.requests,
            "ok": self.ok,
            "rejected_503": self.rejected,
            "expired_504": self.expired,
            "errors": self.errors,
            "rejection_rate": round(self.rejection_rate, 4),
            "p50_ms": round(self.percentile_ms(50), 3),
            "p95_ms": round(self.percentile_ms(95), 3),
            "p99_ms": round(self.percentile_ms(99), 3),
        }


class HttpClient:
    """One persistent keep-alive connection to the service."""

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self._host, self._port)

    async def get(self, target: str) -> tuple:
        """``GET target`` -> ``(status, payload)``; reconnects once on EOF."""
        if self._writer is None:
            await self._connect()
        request = (
            f"GET {target} HTTP/1.1\r\nHost: {self._host}\r\n\r\n"
        ).encode("latin-1")
        try:
            self._writer.write(request)
            await self._writer.drain()
            status, _, payload = await read_response(self._reader)
        except (ProtocolError, ConnectionError, OSError):
            # The server closed a keep-alive connection (e.g. after a
            # 400, or across a restart); retry once on a fresh one.
            await self.close()
            await self._connect()
            self._writer.write(request)
            await self._writer.drain()
            status, _, payload = await read_response(self._reader)
        return status, payload

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        self._reader = None
        self._writer = None


def _record(report: LoadReport, status: int, elapsed_ms: float) -> None:
    report.requests += 1
    if status == 200:
        report.ok += 1
        report.latencies_ms.append(elapsed_ms)
    elif status == 503:
        report.rejected += 1
    elif status == 504:
        report.expired += 1
    else:
        report.errors += 1


async def run_closed_loop(
    host: str,
    port: int,
    users: Sequence[int],
    clients: int,
    duration: float,
    deadline_ms: Optional[float] = None,
) -> LoadReport:
    """N back-to-back clients for ``duration`` seconds -> throughput ceiling."""
    report = LoadReport(duration_s=duration, offered_qps=None)
    stop_at = time.monotonic() + duration
    suffix = "" if deadline_ms is None else f"&deadline_ms={deadline_ms:g}"

    async def one_client(offset: int) -> None:
        client = HttpClient(host, port)
        position = offset
        try:
            while time.monotonic() < stop_at:
                user = users[position % len(users)]
                position += clients
                started = time.monotonic()
                try:
                    status, _ = await client.get(f"/recommend?user={user}{suffix}")
                except (ProtocolError, ConnectionError, OSError):
                    report.requests += 1
                    report.errors += 1
                    await client.close()
                    continue
                _record(report, status, (time.monotonic() - started) * 1000.0)
        finally:
            await client.close()

    started = time.monotonic()
    await asyncio.gather(*(one_client(offset) for offset in range(clients)))
    report.duration_s = time.monotonic() - started
    return report


async def run_open_loop(
    host: str,
    port: int,
    users: Sequence[int],
    offered_qps: float,
    duration: float,
    deadline_ms: Optional[float] = None,
    max_connections: int = 256,
) -> LoadReport:
    """Fixed-rate arrivals at ``offered_qps`` -> honest latency percentiles.

    Arrivals never wait for earlier requests: each grabs an idle pooled
    connection or opens a new one (up to ``max_connections``, past which
    the arrival is counted as a client-side error rather than silently
    deferred — deferring would reintroduce coordinated omission).
    """
    report = LoadReport(duration_s=duration, offered_qps=offered_qps)
    interval = 1.0 / offered_qps
    suffix = "" if deadline_ms is None else f"&deadline_ms={deadline_ms:g}"
    idle: List[HttpClient] = []
    open_connections = 0
    tasks: List[asyncio.Task] = []

    async def one_request(sequence: int) -> None:
        nonlocal open_connections
        client = idle.pop() if idle else HttpClient(host, port)
        user = users[sequence % len(users)]
        started = time.monotonic()
        try:
            status, _ = await client.get(f"/recommend?user={user}{suffix}")
        except (ProtocolError, ConnectionError, OSError):
            report.requests += 1
            report.errors += 1
            await client.close()
            open_connections -= 1
            return
        _record(report, status, (time.monotonic() - started) * 1000.0)
        idle.append(client)

    start = time.monotonic()
    sequence = 0
    while True:
        due = start + sequence * interval
        now = time.monotonic()
        if due - start >= duration:
            break
        if due > now:
            await asyncio.sleep(due - now)
        if not idle and open_connections >= max_connections:
            report.requests += 1
            report.errors += 1
        else:
            if not idle:
                open_connections += 1
            tasks.append(asyncio.ensure_future(one_request(sequence)))
        sequence += 1
    if tasks:
        await asyncio.wait(tasks, timeout=10.0)
        for task in tasks:
            if not task.done():
                task.cancel()
    for client in idle:
        await client.close()
    report.duration_s = time.monotonic() - start
    return report
