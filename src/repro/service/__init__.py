"""HTTP front door for the serving layer (see DESIGN.md).

An asyncio event loop (:class:`RecommendServer`) owning admission
control, deadlines and hot swap, in front of a pool of reader processes
(:class:`ReaderPool`) each zero-copy attached to the published
:class:`~repro.serve.ModelStore` segment.  Stdlib only — the HTTP subset
lives in :mod:`repro.service.protocol`, user -> reader affinity in
:mod:`repro.service.routing`, and the benchmark's client half in
:mod:`repro.service.loadgen`.
"""

from .loadgen import HttpClient, LoadReport, run_closed_loop, run_open_loop
from .pool import ReaderOptions, ReaderPool
from .protocol import HttpRequest, ProtocolError, read_request, read_response, render_response
from .routing import DEFAULT_REPLICAS, HashRing
from .server import RecommendServer, ServerStats, ServiceConfig, run_server

__all__ = [
    "DEFAULT_REPLICAS",
    "HashRing",
    "HttpClient",
    "HttpRequest",
    "LoadReport",
    "ProtocolError",
    "ReaderOptions",
    "ReaderPool",
    "RecommendServer",
    "ServerStats",
    "ServiceConfig",
    "read_request",
    "read_response",
    "render_response",
    "run_closed_loop",
    "run_open_loop",
    "run_server",
]
