"""The asyncio HTTP front door: admission control, deadlines, hot swap.

:class:`RecommendServer` is the protocol boundary the ROADMAP asks for:
an event loop in front of the :class:`~repro.service.pool.ReaderPool`,
owning every decision that must happen *before* work is queued:

* **admission control** — at most ``queue_depth`` requests may be
  in flight per reader.  The bound is enforced at accept time: an
  arrival that would exceed it is answered ``503`` with a
  ``Retry-After`` hint immediately, for the cost of parsing one request
  line.  Nothing ever queues unboundedly — under overload the server
  sheds load at wire speed instead of building a latency bomb (see
  DESIGN.md, "Admission control and the request path");
* **deadlines** — every request carries an absolute deadline (client
  supplied ``deadline_ms`` or the configured default).  The server
  stops waiting at the deadline and answers ``504``; the reader checks
  the same deadline before scoring so expired work is dropped, not
  computed; a result that arrives after its waiter gave up is discarded
  on the floor (its request id is no longer registered);
* **routing** — users map to readers through the consistent-hash
  :class:`~repro.service.routing.HashRing`, so each reader's slate
  cache stays hot and a reader death remaps only its own arc;
* **supervision** — a dead reader fails its in-flight requests with
  ``503`` (safe to retry: the work never produced partial state) and is
  respawned attached to the current model version, within a restart
  budget; past the budget the shard is removed from the ring;
* **hot swap** — a supervisor tick watches the :class:`ModelStore` and
  broadcasts newly published versions to the readers, which swap
  between batches.  Serving never pauses: requests in flight complete
  against the version they were scored under, new batches pick up the
  new segment, and the retired segment is unlinked by the store's
  refcount exactly as in-process serving does.

``GET`` endpoints: ``/recommend?user=U[&k=K][&deadline_ms=D]``,
``/healthz``, and ``/stats`` (server counters plus each reader's
piggybacked :class:`~repro.serve.ServiceStats` snapshot).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..exceptions import ExecutionError
from ..serve.scorer import DEFAULT_CHUNK_ITEMS
from ..serve.service import DEFAULT_SERVICE_BATCH
from ..serve.store import ModelStore
from ..tune.profile import resolve_serving_batch_size, resolve_serving_chunk_items
from .pool import ReaderOptions, ReaderPool
from .protocol import HttpRequest, ProtocolError, read_request, render_response
from .routing import HashRing


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the HTTP front door.

    ``ann=True`` serves every request from the approximate
    :class:`~repro.serve.ann.AnnScorer` tier at ``nprobe`` probed lists
    — the store's published versions must then carry an ANN index
    (``store.publish(model, index=...)``), which the server checks at
    startup rather than letting every reader crash on attach.

    ``batch_size`` and ``chunk_items`` accept ``"auto"``: resolved at
    construction time through the active
    :class:`repro.tune.TunedProfile` (falling back to the hand-picked
    defaults when none is loaded), so the reader pool only ever sees
    concrete integers.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    k: int = 10
    queue_depth: int = 64
    deadline: float = 1.0
    retry_after: float = 1.0
    batch_size: Union[int, str] = DEFAULT_SERVICE_BATCH
    cache_size: int = 4096
    chunk_items: Union[int, str] = DEFAULT_CHUNK_ITEMS
    max_reader_restarts: int = 3
    supervise_interval: float = 0.05
    start_method: Optional[str] = None
    ann: bool = False
    nprobe: int = 8

    def __post_init__(self) -> None:
        # Frozen dataclass: resolve the "auto" knobs in place so every
        # consumer (reader options, /stats) sees concrete integers.
        object.__setattr__(
            self,
            "batch_size",
            resolve_serving_batch_size(self.batch_size, DEFAULT_SERVICE_BATCH),
        )
        object.__setattr__(
            self,
            "chunk_items",
            resolve_serving_chunk_items(self.chunk_items, DEFAULT_CHUNK_ITEMS),
        )
        if self.batch_size <= 0:
            raise ExecutionError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        if self.chunk_items <= 0:
            raise ExecutionError(
                f"chunk_items must be positive, got {self.chunk_items}"
            )
        if self.workers <= 0:
            raise ExecutionError(f"workers must be positive, got {self.workers}")
        if self.queue_depth <= 0:
            raise ExecutionError(f"queue_depth must be positive, got {self.queue_depth}")
        if self.deadline <= 0:
            raise ExecutionError(f"deadline must be positive, got {self.deadline}")
        if self.k <= 0:
            raise ExecutionError(f"k must be positive, got {self.k}")
        if self.nprobe <= 0:
            raise ExecutionError(f"nprobe must be positive, got {self.nprobe}")


@dataclass
class ServerStats:
    """Event-loop-side counters exposed by ``/stats``."""

    requests: int = 0
    served: int = 0
    rejected_overload: int = 0
    expired_deadline: int = 0
    failed: int = 0
    bad_requests: int = 0
    reader_deaths: int = 0
    reader_respawns: int = 0
    model_swaps: int = 0
    max_in_flight: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class _InFlight:
    """One admitted request awaiting its reader's result."""

    future: asyncio.Future
    reader: int
    deadline: float


class RecommendServer:
    """Asyncio HTTP/JSON server over a pool of shared-memory readers.

    The server does not own the :class:`ModelStore` — the publisher
    (trainer, ingest session, or test) does; the server only follows its
    ``current_handle``.  Start with :meth:`start`, stop with
    :meth:`stop`; both are idempotent enough for error-path cleanup.
    """

    def __init__(self, store: ModelStore, config: ServiceConfig = ServiceConfig()) -> None:
        self._store = store
        self.config = config
        self.stats = ServerStats()
        self._handle = store.current_handle()
        if config.ann and self._handle.index is None:
            raise ExecutionError(
                "ann=True but the published model carries no index; "
                "publish with store.publish(model, index=IvfIndex.build(model))"
            )
        self._pool: Optional[ReaderPool] = None
        self._ring: Optional[HashRing] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._supervisor: Optional[asyncio.Task] = None
        self._in_flight: Dict[int, _InFlight] = {}
        self._per_reader_load: Dict[int, int] = {}
        self._reader_stats: Dict[int, dict] = {}
        self._reader_versions: Dict[int, int] = {}
        self._ready: Dict[int, asyncio.Future] = {}
        self._next_request_id = 0
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` in tests)."""
        if self._server is None:
            raise ExecutionError("the server is not running")
        return self._server.sockets[0].getsockname()[1]

    @property
    def model_version(self) -> int:
        """The version the server last broadcast to its readers."""
        return self._handle.version

    async def start(self, wait_ready: float = 10.0) -> None:
        """Spawn the reader pool, bind the socket, start supervising."""
        if self._started:
            raise ExecutionError("the server is already running")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._ready = {
            index: self._loop.create_future() for index in range(self.config.workers)
        }
        options = ReaderOptions(
            k=self.config.k,
            batch_size=self.config.batch_size,
            cache_size=self.config.cache_size,
            chunk_items=self.config.chunk_items,
            ann=self.config.ann,
            nprobe=self.config.nprobe,
        )
        self._pool = ReaderPool(
            self._handle,
            workers=self.config.workers,
            options=options,
            on_message=self._post_message,
            start_method=self.config.start_method,
        )
        self._ring = HashRing(range(self.config.workers))
        self._per_reader_load = {index: 0 for index in range(self.config.workers)}
        self._pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self._supervisor = self._loop.create_task(self._supervise())
        if wait_ready:
            # Readers that die during startup are respawned by the
            # supervisor; waiting is best-effort so a chaos test cannot
            # wedge start() forever.
            try:
                await asyncio.wait_for(
                    asyncio.gather(*self._ready.values()), timeout=wait_ready
                )
            except asyncio.TimeoutError:  # pragma: no cover - slow machine
                pass

    async def stop(self) -> None:
        """Stop accepting, fail in-flight requests, stop the pool."""
        if self._stopped:
            return
        self._stopped = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for record in list(self._in_flight.values()):
            if not record.future.done():
                record.future.set_result(("error", "server stopped"))
        self._in_flight.clear()
        if self._pool is not None:
            await asyncio.get_running_loop().run_in_executor(None, self._pool.stop)

    # ------------------------------------------------------------------ #
    # Pool messages (drain thread -> loop)
    # ------------------------------------------------------------------ #
    def _post_message(self, message: tuple) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._on_pool_message, message)

    def _on_pool_message(self, message: tuple) -> None:
        kind = message[0]
        if kind == "results":
            _, index, results, stats, version = message
            self._reader_stats[index] = stats
            self._reader_versions[index] = version
            for req_id, status, payload in results:
                record = self._in_flight.pop(req_id, None)
                if record is None:
                    continue  # waiter already timed out: late result dropped
                self._per_reader_load[record.reader] = max(
                    0, self._per_reader_load.get(record.reader, 0) - 1
                )
                if not record.future.done():
                    record.future.set_result((status, payload))
        elif kind == "ready":
            _, index, version = message
            self._reader_versions[index] = version
            ready = self._ready.get(index)
            if ready is not None and not ready.done():
                ready.set_result(version)
        elif kind == "died":
            self._on_reader_death(message[1])

    def _on_reader_death(self, index: int) -> None:
        """Fail the dead reader's in-flight work and schedule its respawn."""
        self.stats.reader_deaths += 1
        stranded = [
            req_id
            for req_id, record in self._in_flight.items()
            if record.reader == index
        ]
        for req_id in stranded:
            record = self._in_flight.pop(req_id)
            if not record.future.done():
                # 503, not 500: the request produced no state, a retry
                # after the respawn will succeed.
                record.future.set_result(("died", None))
        self._per_reader_load[index] = 0
        if self._pool is None or self._stopped:
            return
        if self._pool.restarts(index) >= self.config.max_reader_restarts:
            self._retire_shard(index)
            return
        self.stats.reader_respawns += 1
        self._pool.respawn(index)

    def _retire_shard(self, index: int) -> None:
        """Take a budget-exhausted reader out of rotation for good."""
        self._pool.mark_failed(index)
        if self._ring is not None and len(self._ring) > 1:
            self._ring.remove_shard(index)
        elif self._ring is not None:
            self._ring = None  # last reader gone: every request is 503

    # ------------------------------------------------------------------ #
    # Supervision: liveness + hot swap
    # ------------------------------------------------------------------ #
    async def _supervise(self) -> None:
        while True:
            await asyncio.sleep(self.config.supervise_interval)
            current = self._store.current_version
            if current is not None and current != self._handle.version:
                self._handle = self._store.current_handle()
                self._pool.update_model(self._handle)
                self.stats.model_swaps += 1

    # ------------------------------------------------------------------ #
    # HTTP handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError:
                    self.stats.bad_requests += 1
                    writer.write(
                        render_response(
                            400, {"error": "malformed request"}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: HttpRequest) -> bytes:
        keep = request.keep_alive
        if request.method != "GET":
            return render_response(
                405, {"error": "only GET is supported"}, keep_alive=keep
            )
        if request.path == "/healthz":
            return render_response(200, self._health_payload(), keep_alive=keep)
        if request.path == "/stats":
            return render_response(200, self._stats_payload(), keep_alive=keep)
        if request.path == "/recommend":
            return await self._recommend(request)
        return render_response(404, {"error": f"no route {request.path}"}, keep_alive=keep)

    def _health_payload(self) -> dict:
        healthy = self._ring is not None
        return {
            "status": "ok" if healthy else "degraded",
            "model_version": self._handle.version,
            "readers": 0 if self._ring is None else len(self._ring),
            "in_flight": len(self._in_flight),
        }

    def _stats_payload(self) -> dict:
        return {
            "server": self.stats.as_dict(),
            "tier": "ann" if self.config.ann else "exact",
            "in_flight": len(self._in_flight),
            "queue_limit": self.config.queue_depth * self.config.workers,
            "per_reader_in_flight": dict(self._per_reader_load),
            "model_version": self._handle.version,
            "reader_versions": dict(self._reader_versions),
            "readers": {
                str(index): stats for index, stats in self._reader_stats.items()
            },
            "cache_hit_rate": self._cache_hit_rate(),
        }

    def _cache_hit_rate(self) -> float:
        requests = sum(
            int(stats.get("requests", 0)) for stats in self._reader_stats.values()
        )
        hits = sum(
            int(stats.get("cache_hits", 0)) for stats in self._reader_stats.values()
        )
        return round(hits / requests, 4) if requests else 0.0

    async def _recommend(self, request: HttpRequest) -> bytes:
        keep = request.keep_alive
        self.stats.requests += 1
        try:
            user = int(request.query["user"])
        except (KeyError, ValueError):
            self.stats.bad_requests += 1
            return render_response(
                400, {"error": "a numeric user=<id> parameter is required"}, keep_alive=keep
            )
        try:
            k = int(request.query.get("k", self.config.k))
            deadline_ms = float(
                request.query.get("deadline_ms", self.config.deadline * 1000.0)
            )
        except ValueError:
            self.stats.bad_requests += 1
            return render_response(
                400, {"error": "k and deadline_ms must be numeric"}, keep_alive=keep
            )
        if k <= 0 or k > self.config.k:
            # Slates are cached at the configured k; any smaller k is a
            # prefix of that slate, a larger one would need a rescore.
            self.stats.bad_requests += 1
            return render_response(
                400,
                {"error": f"k must lie in [1, {self.config.k}]"},
                keep_alive=keep,
            )
        if deadline_ms <= 0:
            self.stats.bad_requests += 1
            return render_response(
                400, {"error": "deadline_ms must be positive"}, keep_alive=keep
            )

        if self._ring is None:
            self.stats.rejected_overload += 1
            return self._overloaded(keep, reason="no readers available")
        reader = self._ring.route(user)
        if (
            self._per_reader_load.get(reader, 0) >= self.config.queue_depth
            or len(self._in_flight) >= self.config.queue_depth * self.config.workers
        ):
            self.stats.rejected_overload += 1
            return self._overloaded(keep)

        deadline = time.monotonic() + deadline_ms / 1000.0
        req_id = self._next_request_id
        self._next_request_id += 1
        future = self._loop.create_future()
        self._in_flight[req_id] = _InFlight(
            future=future, reader=reader, deadline=deadline
        )
        self._per_reader_load[reader] = self._per_reader_load.get(reader, 0) + 1
        self.stats.max_in_flight = max(self.stats.max_in_flight, len(self._in_flight))
        if not self._pool.send(reader, ("req", req_id, user, deadline)):
            self._forget(req_id)
            self.stats.rejected_overload += 1
            return self._overloaded(keep, reason="reader unreachable")
        try:
            status, payload = await asyncio.wait_for(
                future, timeout=max(0.0, deadline - time.monotonic())
            )
        except asyncio.TimeoutError:
            # Deadline fired while the request was queued or scoring; the
            # id is unregistered so a late result is dropped on arrival.
            self._forget(req_id)
            self.stats.expired_deadline += 1
            return render_response(
                504, {"error": "deadline exceeded", "user": user}, keep_alive=keep
            )
        if status == "ok":
            self.stats.served += 1
            payload = dict(payload)
            payload["items"] = payload["items"][:k]
            payload["scores"] = payload["scores"][:k]
            return render_response(200, payload, keep_alive=keep)
        if status == "expired":
            self.stats.expired_deadline += 1
            return render_response(
                504, {"error": "deadline exceeded", "user": user}, keep_alive=keep
            )
        if status == "died":
            self.stats.failed += 1
            return self._overloaded(keep, reason="reader died; retry")
        self.stats.failed += 1
        return render_response(
            500, {"error": f"scoring failed: {payload}"}, keep_alive=keep
        )

    def _forget(self, req_id: int) -> None:
        record = self._in_flight.pop(req_id, None)
        if record is not None:
            self._per_reader_load[record.reader] = max(
                0, self._per_reader_load.get(record.reader, 0) - 1
            )

    def _overloaded(self, keep_alive: bool, reason: str = "queue full") -> bytes:
        return render_response(
            503,
            {"error": f"overloaded: {reason}"},
            extra_headers={"Retry-After": f"{self.config.retry_after:g}"},
            keep_alive=keep_alive,
        )


async def run_server(
    store: ModelStore,
    config: ServiceConfig = ServiceConfig(),
    ready: Optional[asyncio.Event] = None,
    duration: Optional[float] = None,
) -> RecommendServer:
    """Run a server until cancelled (or for ``duration`` seconds).

    The CLI's ``repro serve`` entry: publishes nothing itself — the
    caller owns the store — and shuts the pool down cleanly on the way
    out.  Setting ``ready`` lets a caller in another task learn the
    bound port.
    """
    server = RecommendServer(store, config)
    await server.start()
    try:
        if ready is not None:
            ready.set()
        if duration is None:
            while True:
                await asyncio.sleep(3600.0)
        else:
            await asyncio.sleep(duration)
    finally:
        await server.stop()
    return server
