"""Reader worker pool: N processes serving one shared model copy.

Each reader process attaches zero-copy to the published
:class:`~repro.serve.ModelStore` segment (:func:`repro.serve.attach_model`)
and runs a :class:`~repro.serve.RecommendationService` over it — the same
coalescing/caching/versioned-cache-key semantics the in-process API has,
now behind a process boundary.  The pool is the bridge between the
asyncio server (which owns admission control and deadlines) and those
readers.

Transport: one duplex :func:`multiprocessing.Pipe` **per reader**, never
a shared queue.  The fault-tolerance work on the training side (see
DESIGN.md, "Failure model and recovery") found the failure mode the hard
way: a process SIGKILLed while holding a shared queue's write lock
wedges every other producer forever.  Per-reader pipes make a reader's
death *detectable* (its pipe EOFs, waking the drain thread immediately)
and *contained* (no lock any other reader needs dies with it).

Message protocol (server -> reader)::

    ("req",   req_id, user, deadline)   score one user (absolute
                                        monotonic deadline; expired work
                                        is dropped, never scored)
    ("model", handle)                   hot-swap to a newer published
                                        version between batches
    ("stop",)                           drain and exit

and reader -> server::

    ("ready",   index, version)         attached and serving
    ("results", index, [(req_id, status, payload), ...], stats, version)

Readers coalesce greedily: after the blocking receive of one request,
everything already queued on the pipe (up to ``batch_size``) is drained
into the same scoring batch, so a burst pays one chunked matmul instead
of one per request.  Expired requests are dropped *before* scoring —
the deadline fires in the reader too, not only at the server — and
reported with status ``"expired"`` so the server can account them.

The pool's owner (the server's supervisor task) is responsible for
reacting to death notifications: :meth:`ReaderPool.respawn` replaces a
dead reader over a **fresh pipe**, re-attached to the current model
version, with the respawn budget enforced by the caller.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Tuple

from .. import faults
from ..exceptions import ExecutionError
from ..serve.service import RecommendationService
from ..serve.store import ModelHandle, attach_model

#: Fault-injection points evaluated inside reader processes (see
#: :mod:`repro.faults`): ``service.reader.start`` on attach,
#: ``service.reader.request`` once per coalesced scoring batch.
FAULT_READER_START = "service.reader.start"
FAULT_READER_REQUEST = "service.reader.request"


@dataclass(frozen=True)
class ReaderOptions:
    """Picklable per-reader serving configuration.

    ``ann=True`` makes every reader serve from the approximate
    :class:`~repro.serve.ann.AnnScorer` tier at ``nprobe`` probed lists;
    the published handle must then carry an index (model and index ride
    one segment, so a reader can never pair them across versions).
    """

    k: int = 10
    batch_size: int = 64
    cache_size: int = 4096
    chunk_items: int = 8192
    ann: bool = False
    nprobe: int = 8


@dataclass
class _Reader:
    """Pool-side record of one reader process."""

    index: int
    process: object
    conn: object
    restarts: int = 0
    failed: bool = False
    started_at: float = field(default_factory=time.monotonic)


def _merge_stats(total: Dict[str, object], update: Dict[str, object]) -> None:
    """Accumulate one service-stats snapshot into a running total."""
    for key, value in update.items():
        if isinstance(value, dict):
            bucket = total.setdefault(key, {})
            for sub, count in value.items():
                bucket[sub] = bucket.get(sub, 0) + count
        else:
            total[key] = total.get(key, 0) + value


def _reader_main(index: int, handle: ModelHandle, options: ReaderOptions, conn) -> None:
    """Reader process entry point (module-level: pickles under spawn)."""
    service = None
    segment = None
    totals: Dict[str, object] = {"expired_dropped": 0, "swaps": 0}

    def _attach(new_handle: ModelHandle) -> None:
        nonlocal service, segment
        if service is not None:
            _merge_stats(totals, service.stats.as_dict())
            totals["swaps"] = totals.get("swaps", 0) + 1
            service.close()
            service = None
            segment.close()
            segment = None
        # Model and index are mapped from ONE handle over ONE stamped
        # segment — the version the service reports is atomically the
        # version of both.
        model, ivf, segment = attach_model(new_handle, with_index=True)
        service = RecommendationService(
            model,
            k=options.k,
            batch_size=options.batch_size,
            cache_size=options.cache_size,
            chunk_items=options.chunk_items,
            model_version=new_handle.version,
            ann=options.ann,
            nprobe=options.nprobe,
            index=ivf,
        )

    def _snapshot() -> Dict[str, object]:
        """Service stats accumulated across swaps, plus reader counters."""
        combined: Dict[str, object] = {}
        _merge_stats(
            combined,
            {k: v for k, v in totals.items() if k not in ("expired_dropped", "swaps")},
        )
        _merge_stats(combined, service.stats.as_dict())
        combined["expired_dropped"] = totals["expired_dropped"]
        combined["swaps"] = totals["swaps"]
        combined["queue_depth"] = service.queue_depth
        # Post-merge, like queue_depth: _merge_stats only sums numbers.
        combined["tier"] = service.tier
        return combined

    try:
        # Pin the fault plan once: env plans re-parse (with zeroed
        # arrival counters) on every active_plan() call, which would
        # turn a one-shot spec into fire-on-every-batch.
        faults.install(faults.active_plan())
        faults.hit(FAULT_READER_START, worker=index)
        _attach(handle)
        conn.send(("ready", index, service.model_version))
        stopping = False
        while not stopping:
            try:
                message = conn.recv()
            except EOFError:  # server went away; nothing to serve for
                break
            batch: List[tuple] = []
            while True:
                kind = message[0]
                if kind == "stop":
                    stopping = True
                elif kind == "model":
                    _attach(message[1])
                elif kind == "req":
                    batch.append(message)
                if stopping or len(batch) >= options.batch_size or not conn.poll():
                    break
                try:
                    message = conn.recv()
                except EOFError:
                    stopping = True
            if not batch:
                continue
            results: List[Tuple[int, str, object]] = []
            try:
                # The fault point models a reader dying (kill) or wedging
                # (stall) mid-request, after admission but before any
                # result is produced.
                faults.hit(FAULT_READER_REQUEST, worker=index)
                now = time.monotonic()
                pending = []
                for _, req_id, user, deadline in batch:
                    if deadline is not None and now >= deadline:
                        totals["expired_dropped"] = totals.get("expired_dropped", 0) + 1
                        results.append((req_id, "expired", None))
                        continue
                    pending.append((req_id, service.enqueue(int(user))))
                service.flush()
                for req_id, request in pending:
                    slate = request.result
                    results.append(
                        (
                            req_id,
                            "ok",
                            {
                                "user": slate.user,
                                "model_version": slate.model_version,
                                "items": [int(item) for item in slate.items],
                                "scores": [float(score) for score in slate.scores],
                            },
                        )
                    )
            except faults.FaultInjected as error:
                results = [(req_id, "error", repr(error)) for _, req_id, _, _ in batch]
            except Exception as error:  # surfaced as 500s, never a dead reader
                done = {req_id for req_id, _, _ in results}
                results.extend(
                    (req_id, "error", repr(error))
                    for _, req_id, _, _ in batch
                    if req_id not in done
                )
            conn.send(("results", index, results, _snapshot(), service.model_version))
    except (EOFError, OSError, BrokenPipeError):  # pragma: no cover - server died
        pass
    finally:
        if service is not None:
            service.close()
        if segment is not None:
            segment.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ReaderPool:
    """Owns the reader processes and their pipes.

    Thread model: ``send``/``update_model``/``respawn``/``stop`` are
    called from the event-loop thread only; one internal drain thread
    receives every reader's messages and forwards them to
    ``on_message`` (which the server marshals back into the loop with
    ``call_soon_threadsafe``).  Duplex pipes are safe under exactly this
    split — one sending thread, one receiving thread.
    """

    def __init__(
        self,
        handle: ModelHandle,
        workers: int,
        options: ReaderOptions,
        on_message: Callable[[tuple], None],
        start_method: Optional[str] = None,
    ) -> None:
        if workers <= 0:
            raise ExecutionError(f"the reader pool needs >= 1 worker, got {workers}")
        self._handle = handle
        self._options = options
        self._on_message = on_message
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else multiprocessing.get_start_method(allow_none=False)
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._workers = int(workers)
        self._readers: Dict[int, _Reader] = {}
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._drain: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn every reader and the drain thread."""
        for index in range(self._workers):
            self._spawn(index)
        self._drain = threading.Thread(
            target=self._drain_loop, name="reader-pool-drain", daemon=True
        )
        self._drain.start()

    def _spawn(self, index: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_reader_main,
            args=(index, self._handle, self._options, child_conn),
            daemon=True,
            name=f"repro-reader-{index}",
        )
        process.start()
        child_conn.close()
        with self._lock:
            self._readers[index] = _Reader(index=index, process=process, conn=parent_conn)

    def stop(self, timeout: float = 5.0) -> None:
        """Stop every reader (idempotent); stragglers are terminated."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        with self._lock:
            readers = list(self._readers.values())
        for reader in readers:
            try:
                reader.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + timeout
        for reader in readers:
            reader.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if reader.process.is_alive():  # pragma: no cover - wedged reader
                reader.process.terminate()
                reader.process.join(timeout=1.0)
        if self._drain is not None:
            self._drain.join(timeout=timeout)
        with self._lock:
            for reader in self._readers.values():
                try:
                    reader.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            self._readers.clear()

    # ------------------------------------------------------------------ #
    # Server-facing operations (event-loop thread)
    # ------------------------------------------------------------------ #
    def send(self, index: int, message: tuple) -> bool:
        """Ship one message to a reader; ``False`` if it is unreachable."""
        with self._lock:
            reader = self._readers.get(index)
        if reader is None or reader.failed:
            return False
        try:
            reader.conn.send(message)
            return True
        except (OSError, BrokenPipeError):
            return False

    def update_model(self, handle: ModelHandle) -> None:
        """Broadcast a newly published version to every live reader."""
        self._handle = handle
        with self._lock:
            indices = [r.index for r in self._readers.values() if not r.failed]
        for index in indices:
            self.send(index, ("model", handle))

    def alive(self, index: int) -> bool:
        with self._lock:
            reader = self._readers.get(index)
        return bool(reader and not reader.failed and reader.process.is_alive())

    def restarts(self, index: int) -> int:
        with self._lock:
            reader = self._readers.get(index)
        return 0 if reader is None else reader.restarts

    def mark_failed(self, index: int) -> None:
        """Take a reader permanently out of service (budget exhausted)."""
        with self._lock:
            reader = self._readers.get(index)
            if reader is not None:
                reader.failed = True

    def respawn(self, index: int) -> int:
        """Replace a dead reader over a fresh pipe; returns its restart count.

        The new process attaches to the *current* model handle, so a
        reader that died before a hot swap completes comes back already
        on the new version.
        """
        with self._lock:
            old = self._readers.get(index)
            restarts = (old.restarts if old else 0) + 1
        if old is not None:
            if old.process.is_alive():  # pragma: no cover - defensive
                old.process.terminate()
            old.process.join(timeout=1.0)
            try:
                old.conn.close()
            except OSError:
                pass
            with self._lock:
                self._readers.pop(index, None)
        self._spawn(index)
        with self._lock:
            self._readers[index].restarts = restarts
        return restarts

    # ------------------------------------------------------------------ #
    # Drain thread
    # ------------------------------------------------------------------ #
    def _drain_loop(self) -> None:
        while not self._stopping.is_set():
            with self._lock:
                by_conn = {
                    reader.conn: reader.index
                    for reader in self._readers.values()
                    if not reader.failed
                }
            if not by_conn:
                time.sleep(0.05)
                continue
            try:
                ready = connection_wait(list(by_conn), timeout=0.2)
            except OSError:  # a conn was closed under us (respawn race)
                continue
            for conn in ready:
                index = by_conn[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Reader death: its pipe EOFed.  Tell the server once
                    # and stop polling this conn (respawn replaces it).
                    with self._lock:
                        reader = self._readers.get(index)
                        if reader is not None and reader.conn is conn:
                            dead = not self._stopping.is_set()
                        else:
                            dead = False
                    if dead:
                        self._on_message(("died", index))
                        with self._lock:
                            reader = self._readers.get(index)
                            if reader is not None and reader.conn is conn:
                                reader.failed = True
                    continue
                self._on_message(message)
