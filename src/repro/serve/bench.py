"""Measurement helpers for serving throughput.

Shared by the ``repro serve-bench`` CLI subcommand and
``benchmarks/bench_serving.py`` so the committed ``BENCH_serve.json``
numbers and the ad-hoc CLI numbers come from the same code paths.

Three measured configurations:

* **naive** — the pre-serving baseline: one
  :meth:`repro.sgd.FactorModel.top_items` call per user (a ``p_u @ Q``
  matvec plus one ``argpartition``); this is the loop the tentpole's
  ">= 3x users/s" acceptance is measured against;
* **full matmul** — ``P[batch] @ Q`` in one unchunked BLAS-3 call, then
  per-row ``argpartition`` top-K.  Because it is pure BLAS + selection
  with no serving-layer logic, it doubles as the *runner-speed normaliser* for
  the CI perf guard: dividing a chunked configuration's users/s by the
  same run's full-matmul users/s cancels machine differences between
  the baseline host and the CI runner;
* **chunked** — the real :class:`repro.serve.Scorer` at a given
  ``(batch_size, chunk_items)``;
* **ann** — the approximate :class:`repro.serve.ann.AnnScorer` at a
  given ``nprobe``, paired with its recall@K against the exact scorer
  (:func:`recall_at_k`) so a throughput number can never be quoted
  without the accuracy it paid for.

Every measurement scores the same user pool and reports users/s.  Every
:class:`ThroughputSample` carries the scorer ``tier`` that produced it
(``"exact"``, ``"ann"`` or ``"baseline"`` for the non-Scorer loops), so
BENCH comparisons can never silently mix tiers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..exceptions import InvalidMatrixError
from ..sgd.model import FactorModel
from ..sparse import SparseRatingMatrix
from .ann import DEFAULT_NPROBE, AnnScorer, IvfIndex
from .scorer import PAD_ITEM, Scorer


def synthetic_model(
    n_users: int, n_items: int, latent_factors: int, seed: int = 0
) -> FactorModel:
    """A random factor model of serving-realistic shape.

    Serving throughput depends only on shapes, never on factor values,
    so benchmarks build models directly instead of training one — which
    is what lets the bench run at the *paper's* item-catalogue sizes
    (Netflix: 17 770 items) in seconds.
    """
    return FactorModel.initialize(n_users, n_items, latent_factors, seed=seed)


@dataclass(frozen=True)
class ThroughputSample:
    """One measured configuration.

    ``tier`` labels which scorer produced the number: ``"exact"``
    (:class:`Scorer`), ``"ann"`` (:class:`AnnScorer`) or ``"baseline"``
    (the naive / full-matmul reference loops).  ``recall_at_k`` is only
    meaningful on the ann tier (``None`` elsewhere): approximate
    throughput is quoted *with* the accuracy it paid for.
    """

    label: str
    users_scored: int
    seconds: float
    tier: str = "exact"
    recall_at_k: Optional[float] = None

    @property
    def users_per_s(self) -> float:
        return self.users_scored / max(self.seconds, 1e-12)


def recall_at_k(approx_ids: np.ndarray, exact_ids: np.ndarray) -> float:
    """Fraction of the exact top-K each user's approximate slate found.

    Both arguments are ``(B, k)`` id arrays as returned by
    ``Scorer.top_k`` / ``AnnScorer.top_k``.  :data:`PAD_ITEM` entries in
    the *exact* slate (users with fewer than ``k`` rankable items) are
    excluded from the denominator, and PAD entries in the approximate
    slate can never count as hits — so a fully-padded user contributes
    recall 1.0, not 0/0.  Shared by the test suite and the benchmark so
    there is exactly one definition of the gated metric.
    """
    approx_ids = np.asarray(approx_ids)
    exact_ids = np.asarray(exact_ids)
    if approx_ids.shape != exact_ids.shape or approx_ids.ndim != 2:
        raise InvalidMatrixError(
            f"recall_at_k needs matching (B, k) id arrays, got "
            f"{approx_ids.shape} vs {exact_ids.shape}"
        )
    real = exact_ids != PAD_ITEM
    total = int(real.sum())
    if total == 0:
        return 1.0
    hits = 0
    for approx_row, exact_row, real_row in zip(approx_ids, exact_ids, real):
        wanted = exact_row[real_row]
        found = approx_row[approx_row != PAD_ITEM]
        hits += np.isin(wanted, found).sum()
    return float(hits) / total


def measure_naive(
    model: FactorModel, users: np.ndarray, k: int
) -> ThroughputSample:
    """Per-user ``top_items`` loop — the baseline serving replaced."""
    start = time.perf_counter()
    for user in users:
        model.top_items(int(user), count=k)
    return ThroughputSample(
        label="naive_per_user",
        users_scored=len(users),
        seconds=time.perf_counter() - start,
        tier="baseline",
    )


def measure_full_matmul(
    model: FactorModel, users: np.ndarray, k: int, batch_size: int
) -> ThroughputSample:
    """Unchunked ``P[batch] @ Q`` + per-row ``argpartition`` top-K.

    The obvious batched implementation — one BLAS-3 call over the whole
    catalogue, no chunking, no tie discipline.  Pure BLAS + selection
    with no serving-layer logic, which is what makes it the guard
    normaliser (see the module docstring).
    """
    n = model.shape[1]
    k = min(k, n)
    start = time.perf_counter()
    for base in range(0, len(users), batch_size):
        batch = users[base : base + batch_size]
        scores = model.p[batch] @ model.q
        if k < n:
            top = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        else:
            top = np.broadcast_to(np.arange(n), scores.shape)
        order = np.argsort(
            np.take_along_axis(-scores, top, axis=1), axis=1
        )
        np.take_along_axis(top, order, axis=1)
    return ThroughputSample(
        label=f"full_matmul_b{batch_size}",
        users_scored=len(users),
        seconds=time.perf_counter() - start,
        tier="baseline",
    )


def measure_chunked(
    model: FactorModel,
    users: np.ndarray,
    k: int,
    batch_size: int,
    chunk_items: int,
    exclude: Optional[SparseRatingMatrix] = None,
) -> ThroughputSample:
    """The production scorer at one ``(batch_size, chunk_items)`` point."""
    scorer = Scorer(model, exclude=exclude, chunk_items=chunk_items)
    start = time.perf_counter()
    for base in range(0, len(users), batch_size):
        scorer.top_k(users[base : base + batch_size], k)
    return ThroughputSample(
        label=f"chunked_b{batch_size}_c{chunk_items}",
        users_scored=len(users),
        seconds=time.perf_counter() - start,
        tier="exact",
    )


def measure_ann(
    model: FactorModel,
    index: IvfIndex,
    users: np.ndarray,
    k: int,
    batch_size: int,
    nprobe: int = DEFAULT_NPROBE,
    exclude: Optional[SparseRatingMatrix] = None,
    exact_ids: Optional[np.ndarray] = None,
) -> ThroughputSample:
    """The ANN tier at one ``nprobe``, with its recall@K when possible.

    ``exact_ids`` is the exact scorer's ``(len(users), k)`` slate for
    the *same* users in the *same* order (compute it once, reuse it
    across the nprobe sweep); when given, the sample carries
    :func:`recall_at_k` against it.  Recall is computed outside the
    timed region — the timed loop is exactly the serving loop.
    """
    scorer = AnnScorer(model, index, exclude=exclude, nprobe=nprobe)
    slates = []
    start = time.perf_counter()
    for base in range(0, len(users), batch_size):
        ids, _ = scorer.top_k(users[base : base + batch_size], k)
        slates.append(ids)
    seconds = time.perf_counter() - start
    recall = None
    if exact_ids is not None:
        recall = recall_at_k(np.concatenate(slates, axis=0), exact_ids)
    return ThroughputSample(
        label=f"ann_nlist{index.nlist}_nprobe{scorer.nprobe}_b{batch_size}",
        users_scored=len(users),
        seconds=seconds,
        tier="ann",
        recall_at_k=recall,
    )


def user_pool(n_users: int, pool: int, seed: int = 0) -> np.ndarray:
    """A reproducible pool of user ids to score."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_users, size=pool, dtype=np.int64)


def _reader_main(
    index, handle, users, k, batch_size, chunk_items, done_queue, ann=False,
    nprobe=DEFAULT_NPROBE,
) -> None:
    """One reader process: attach the published model, score, report.

    Module-level so it pickles under every multiprocessing start method.
    Messages lead with the reader index so the collector can tell which
    readers have reported and fail fast on the ones that died silently.
    With ``ann=True`` the reader serves from the published index (mapped
    zero-copy from the same segment as the factors) via
    :class:`AnnScorer` instead of the exact scorer.
    """
    from .. import faults
    from .store import attach_model

    model = segment = None
    try:
        faults.hit("serve.reader.start", worker=index)
        if ann:
            model, ivf, segment = attach_model(handle, with_index=True)
            scorer = AnnScorer(
                model, ivf, nprobe=nprobe, chunk_items=chunk_items
            )
        else:
            model, segment = attach_model(handle)
            scorer = Scorer(model, chunk_items=chunk_items)
        start = time.perf_counter()
        for base in range(0, len(users), batch_size):
            scorer.top_k(users[base : base + batch_size], k)
        seconds = time.perf_counter() - start
        done_queue.put((index, segment.name, len(users), seconds, None))
    except BaseException as error:  # pragma: no cover - diagnosed by caller
        done_queue.put((index, None, 0, 0.0, repr(error)))
    finally:
        scorer = model = None
        if segment is not None:
            segment.close()


def measure_multi_reader(
    model: FactorModel,
    users: np.ndarray,
    k: int,
    batch_size: int,
    chunk_items: int,
    readers: int,
    ann_index: Optional[IvfIndex] = None,
    nprobe: int = DEFAULT_NPROBE,
) -> ThroughputSample:
    """Aggregate users/s of ``readers`` processes over ONE published copy.

    Publishes the model into a :class:`~repro.serve.ModelStore`, splits
    the user pool across reader processes that each
    :func:`~repro.serve.attach_model` by name, and asserts every reader
    mapped the *same* segment — the factors exist once in physical
    memory no matter how many readers serve from them.  With
    ``ann_index`` the index is published in the same segment and the
    readers serve from the ANN tier at ``nprobe``.  The store is closed
    before returning; the caller can assert
    :func:`repro.shm.live_segment_names` is empty.
    """
    import multiprocessing
    import queue as queue_module

    from ..exceptions import ExecutionError
    from .store import ModelStore

    if readers <= 0:
        raise ExecutionError(f"readers must be positive, got {readers}")
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else multiprocessing.get_start_method(allow_none=False)
    )
    ctx = multiprocessing.get_context(method)
    with ModelStore() as store:
        handle = store.publish(model, index=ann_index)
        done_queue = ctx.Queue()
        shares = np.array_split(users, readers)
        procs = [
            ctx.Process(
                target=_reader_main,
                args=(
                    i, handle, share, k, batch_size, chunk_items, done_queue,
                    ann_index is not None, nprobe,
                ),
                daemon=True,
            )
            for i, share in enumerate(shares)
        ]
        start = time.perf_counter()
        for proc in procs:
            proc.start()
        # Poll with short timeouts and check reader liveness between
        # polls: a reader that dies without reporting (OOM kill,
        # injected fault) fails the bench within seconds instead of
        # hanging a blocking get for ten minutes per dead reader.
        results: Dict[int, tuple] = {}
        try:
            while len(results) < len(procs):
                try:
                    message = done_queue.get(timeout=1.0)
                except queue_module.Empty:
                    dead = [
                        i
                        for i, proc in enumerate(procs)
                        if i not in results and not proc.is_alive()
                    ]
                    # A reader may report and exit between the timeout
                    # and the liveness scan — drain before declaring it.
                    for i in dead:
                        try:
                            while True:
                                message = done_queue.get_nowait()
                                results[message[0]] = message[1:]
                        except queue_module.Empty:
                            pass
                    dead = [i for i in dead if i not in results]
                    if dead:
                        codes = {i: procs[i].exitcode for i in dead}
                        raise ExecutionError(
                            f"reader process(es) {sorted(dead)} died without "
                            f"reporting (exit codes {codes})"
                        )
                    continue
                results[message[0]] = message[1:]
            seconds = time.perf_counter() - start
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.join(timeout=60.0)
                if proc.is_alive():  # pragma: no cover - hard kill fallback
                    proc.terminate()
            done_queue.close()
            done_queue.join_thread()
    segments = {name for name, _, _, error in results.values() if error is None}
    errors = [error for _, _, _, error in results.values() if error is not None]
    if errors:
        raise ExecutionError(f"reader process failed: {errors[0]}")
    if segments != {handle.segment}:
        raise ExecutionError(
            f"readers mapped segments {segments}, expected exactly "
            f"{{{handle.segment!r}}} — the model must exist once"
        )
    tier = "exact" if ann_index is None else "ann"
    suffix = "" if ann_index is None else f"_nprobe{nprobe}"
    return ThroughputSample(
        label=f"readers{readers}_b{batch_size}_c{chunk_items}{suffix}",
        users_scored=int(sum(count for _, count, _, _ in results.values())),
        seconds=seconds,
        tier=tier,
    )
