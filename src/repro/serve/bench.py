"""Measurement helpers for serving throughput.

Shared by the ``repro serve-bench`` CLI subcommand and
``benchmarks/bench_serving.py`` so the committed ``BENCH_serve.json``
numbers and the ad-hoc CLI numbers come from the same code paths.

Three measured configurations:

* **naive** — the pre-serving baseline: one
  :meth:`repro.sgd.FactorModel.top_items` call per user (a ``p_u @ Q``
  matvec plus one ``argpartition``); this is the loop the tentpole's
  ">= 3x users/s" acceptance is measured against;
* **full matmul** — ``P[batch] @ Q`` in one unchunked BLAS-3 call, then
  per-row ``argpartition`` top-K.  Because it is pure BLAS + selection
  with no serving-layer logic, it doubles as the *runner-speed normaliser* for
  the CI perf guard: dividing a chunked configuration's users/s by the
  same run's full-matmul users/s cancels machine differences between
  the baseline host and the CI runner;
* **chunked** — the real :class:`repro.serve.Scorer` at a given
  ``(batch_size, chunk_items)``.

Every measurement scores the same user pool and reports users/s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..sgd.model import FactorModel
from ..sparse import SparseRatingMatrix
from .scorer import Scorer


def synthetic_model(
    n_users: int, n_items: int, latent_factors: int, seed: int = 0
) -> FactorModel:
    """A random factor model of serving-realistic shape.

    Serving throughput depends only on shapes, never on factor values,
    so benchmarks build models directly instead of training one — which
    is what lets the bench run at the *paper's* item-catalogue sizes
    (Netflix: 17 770 items) in seconds.
    """
    return FactorModel.initialize(n_users, n_items, latent_factors, seed=seed)


@dataclass(frozen=True)
class ThroughputSample:
    """One measured configuration."""

    label: str
    users_scored: int
    seconds: float

    @property
    def users_per_s(self) -> float:
        return self.users_scored / max(self.seconds, 1e-12)


def measure_naive(
    model: FactorModel, users: np.ndarray, k: int
) -> ThroughputSample:
    """Per-user ``top_items`` loop — the baseline serving replaced."""
    start = time.perf_counter()
    for user in users:
        model.top_items(int(user), count=k)
    return ThroughputSample(
        label="naive_per_user",
        users_scored=len(users),
        seconds=time.perf_counter() - start,
    )


def measure_full_matmul(
    model: FactorModel, users: np.ndarray, k: int, batch_size: int
) -> ThroughputSample:
    """Unchunked ``P[batch] @ Q`` + per-row ``argpartition`` top-K.

    The obvious batched implementation — one BLAS-3 call over the whole
    catalogue, no chunking, no tie discipline.  Pure BLAS + selection
    with no serving-layer logic, which is what makes it the guard
    normaliser (see the module docstring).
    """
    n = model.shape[1]
    k = min(k, n)
    start = time.perf_counter()
    for base in range(0, len(users), batch_size):
        batch = users[base : base + batch_size]
        scores = model.p[batch] @ model.q
        if k < n:
            top = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        else:
            top = np.broadcast_to(np.arange(n), scores.shape)
        order = np.argsort(
            np.take_along_axis(-scores, top, axis=1), axis=1
        )
        np.take_along_axis(top, order, axis=1)
    return ThroughputSample(
        label=f"full_matmul_b{batch_size}",
        users_scored=len(users),
        seconds=time.perf_counter() - start,
    )


def measure_chunked(
    model: FactorModel,
    users: np.ndarray,
    k: int,
    batch_size: int,
    chunk_items: int,
    exclude: Optional[SparseRatingMatrix] = None,
) -> ThroughputSample:
    """The production scorer at one ``(batch_size, chunk_items)`` point."""
    scorer = Scorer(model, exclude=exclude, chunk_items=chunk_items)
    start = time.perf_counter()
    for base in range(0, len(users), batch_size):
        scorer.top_k(users[base : base + batch_size], k)
    return ThroughputSample(
        label=f"chunked_b{batch_size}_c{chunk_items}",
        users_scored=len(users),
        seconds=time.perf_counter() - start,
    )


def user_pool(n_users: int, pool: int, seed: int = 0) -> np.ndarray:
    """A reproducible pool of user ids to score."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_users, size=pool, dtype=np.int64)


def _reader_main(
    index, handle, users, k, batch_size, chunk_items, done_queue
) -> None:
    """One reader process: attach the published model, score, report.

    Module-level so it pickles under every multiprocessing start method.
    Messages lead with the reader index so the collector can tell which
    readers have reported and fail fast on the ones that died silently.
    """
    from .. import faults
    from .store import attach_model

    model = segment = None
    try:
        faults.hit("serve.reader.start", worker=index)
        model, segment = attach_model(handle)
        scorer = Scorer(model, chunk_items=chunk_items)
        start = time.perf_counter()
        for base in range(0, len(users), batch_size):
            scorer.top_k(users[base : base + batch_size], k)
        seconds = time.perf_counter() - start
        done_queue.put((index, segment.name, len(users), seconds, None))
    except BaseException as error:  # pragma: no cover - diagnosed by caller
        done_queue.put((index, None, 0, 0.0, repr(error)))
    finally:
        scorer = model = None
        if segment is not None:
            segment.close()


def measure_multi_reader(
    model: FactorModel,
    users: np.ndarray,
    k: int,
    batch_size: int,
    chunk_items: int,
    readers: int,
) -> ThroughputSample:
    """Aggregate users/s of ``readers`` processes over ONE published copy.

    Publishes the model into a :class:`~repro.serve.ModelStore`, splits
    the user pool across reader processes that each
    :func:`~repro.serve.attach_model` by name, and asserts every reader
    mapped the *same* segment — the factors exist once in physical
    memory no matter how many readers serve from them.  The store is
    closed before returning; the caller can assert
    :func:`repro.shm.live_segment_names` is empty.
    """
    import multiprocessing
    import queue as queue_module

    from ..exceptions import ExecutionError
    from .store import ModelStore

    if readers <= 0:
        raise ExecutionError(f"readers must be positive, got {readers}")
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else multiprocessing.get_start_method(allow_none=False)
    )
    ctx = multiprocessing.get_context(method)
    with ModelStore() as store:
        handle = store.publish(model)
        done_queue = ctx.Queue()
        shares = np.array_split(users, readers)
        procs = [
            ctx.Process(
                target=_reader_main,
                args=(i, handle, share, k, batch_size, chunk_items, done_queue),
                daemon=True,
            )
            for i, share in enumerate(shares)
        ]
        start = time.perf_counter()
        for proc in procs:
            proc.start()
        # Poll with short timeouts and check reader liveness between
        # polls: a reader that dies without reporting (OOM kill,
        # injected fault) fails the bench within seconds instead of
        # hanging a blocking get for ten minutes per dead reader.
        results: Dict[int, tuple] = {}
        try:
            while len(results) < len(procs):
                try:
                    message = done_queue.get(timeout=1.0)
                except queue_module.Empty:
                    dead = [
                        i
                        for i, proc in enumerate(procs)
                        if i not in results and not proc.is_alive()
                    ]
                    # A reader may report and exit between the timeout
                    # and the liveness scan — drain before declaring it.
                    for i in dead:
                        try:
                            while True:
                                message = done_queue.get_nowait()
                                results[message[0]] = message[1:]
                        except queue_module.Empty:
                            pass
                    dead = [i for i in dead if i not in results]
                    if dead:
                        codes = {i: procs[i].exitcode for i in dead}
                        raise ExecutionError(
                            f"reader process(es) {sorted(dead)} died without "
                            f"reporting (exit codes {codes})"
                        )
                    continue
                results[message[0]] = message[1:]
            seconds = time.perf_counter() - start
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.join(timeout=60.0)
                if proc.is_alive():  # pragma: no cover - hard kill fallback
                    proc.terminate()
            done_queue.close()
            done_queue.join_thread()
    segments = {name for name, _, _, error in results.values() if error is None}
    errors = [error for _, _, _, error in results.values() if error is not None]
    if errors:
        raise ExecutionError(f"reader process failed: {errors[0]}")
    if segments != {handle.segment}:
        raise ExecutionError(
            f"readers mapped segments {segments}, expected exactly "
            f"{{{handle.segment!r}}} — the model must exist once"
        )
    return ThroughputSample(
        label=f"readers{readers}_b{batch_size}_c{chunk_items}",
        users_scored=int(sum(count for _, count, _, _ in results.values())),
        seconds=seconds,
    )
