"""Top-K recommendation serving over trained factor models.

The serving layer turns a trained :class:`~repro.sgd.FactorModel` into
recommendations at memory-bandwidth speed and publishes it to reader
processes without copies:

* :class:`Scorer` — chunked ``P[batch] @ Q`` batch top-K with
  deterministic tie handling and optional exclusion of already-rated
  items (:mod:`repro.serve.scorer`);
* :class:`AnnScorer` / :class:`IvfIndex` — the approximate retrieval
  tier: a seeded IVF(/PQ) index over the item factors probes a fraction
  of the catalogue and re-ranks it exactly, trading a pinned recall@K
  for an order of magnitude in users/s (:mod:`repro.serve.ann`);
* :class:`ModelStore` / :func:`attach_model` — versioned publication of
  models (and, optionally, their ANN index in the same segment) into
  shared memory with atomic hot-swap and refcounted unlink
  (:mod:`repro.serve.store`);
* :class:`RecommendationService` — the request front-end: coalesces
  single-user requests into scoring batches, caches slates per
  ``(model_version, user)``, hot-reloads across published versions,
  and serves from either scorer tier (:mod:`repro.serve.service`);
* :mod:`repro.serve.bench` — the measurement helpers behind
  ``repro serve-bench`` and ``benchmarks/bench_serving.py``, including
  the PAD-aware :func:`~repro.serve.bench.recall_at_k`.

See README.md ("Serving", "Approximate top-K") for the quick starts and
DESIGN.md ("The serving memory model", "Approximate retrieval memory
model") for why readers never copy ``Q`` and when an old version's
segment is unlinked.
"""

from .ann import (
    DEFAULT_NLIST,
    DEFAULT_NPROBE,
    AnnIndexMeta,
    AnnScorer,
    IvfIndex,
)
from .scorer import DEFAULT_CHUNK_ITEMS, PAD_ITEM, Scorer, brute_force_top_k
from .service import (
    DEFAULT_SERVICE_BATCH,
    Recommendation,
    RecommendationService,
    ServiceStats,
)
from .store import ModelHandle, ModelLease, ModelStore, attach_model

__all__ = [
    "DEFAULT_CHUNK_ITEMS",
    "DEFAULT_NLIST",
    "DEFAULT_NPROBE",
    "DEFAULT_SERVICE_BATCH",
    "PAD_ITEM",
    "Scorer",
    "AnnIndexMeta",
    "AnnScorer",
    "IvfIndex",
    "brute_force_top_k",
    "Recommendation",
    "RecommendationService",
    "ServiceStats",
    "ModelHandle",
    "ModelLease",
    "ModelStore",
    "attach_model",
]
