"""Request-facing serving front-end: batching, caching, hot reload.

:class:`RecommendationService` is the layer between "a request for one
user's recommendations" and the batch-oriented
:class:`~repro.serve.Scorer`:

* **request coalescing** — single-user requests queue up
  (:meth:`enqueue`) and are scored together in one chunked matmul when
  the batch fills or :meth:`flush` is called, so a stream of singles
  gets batch throughput instead of one matvec each;
* **LRU cache** keyed on ``(model_version, user)`` — repeat requests for
  a user are served without touching the factors, and a hot-swap
  invalidates naturally because the key's version component changes;
* **hot reload** — when built over a :class:`~repro.serve.ModelStore`,
  every flush checks the store's current version and re-leases the
  scorer onto a newly published model, releasing the old lease so its
  segment can be unlinked.

The service is deliberately synchronous: coalescing is explicit
(enqueue/flush) rather than timer-driven, which keeps behaviour
deterministic and testable; an async front door would own the timers
and call the same two methods.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ExecutionError
from ..sgd.model import FactorModel
from ..sparse import SparseRatingMatrix
from ..tune.profile import resolve_serving_batch_size, resolve_serving_chunk_items
from .ann import DEFAULT_NPROBE, AnnScorer, IvfIndex
from .scorer import DEFAULT_CHUNK_ITEMS, Scorer
from .store import ModelLease, ModelStore

#: Default coalescing threshold of :meth:`RecommendationService.enqueue`
#: (the ``"auto"`` fallback when no tuned profile is active).
DEFAULT_SERVICE_BATCH = 64


@dataclass(frozen=True)
class Recommendation:
    """One user's scored top-K slate."""

    user: int
    model_version: int
    items: np.ndarray
    scores: np.ndarray


@dataclass
class ServiceStats:
    """Operation counters (exposed for tests, benchmarks and ``/stats``).

    Beyond the plain totals, three load-shaped signals feed the HTTP
    front door's ``/stats`` endpoint (and are just as useful in-process):
    ``max_queue_depth`` is the high-water mark of distinct users pending
    a flush, ``last_batch_users`` the size of the most recent coalesced
    scoring batch (mean batch size is ``users_scored / batches_scored``),
    and ``requests_by_version`` counts requests against each model
    version served — the direct trace of a hot swap rolling through
    traffic.
    """

    requests: int = 0
    cache_hits: int = 0
    batches_scored: int = 0
    users_scored: int = 0
    reloads: int = 0
    reload_failures: int = 0
    max_queue_depth: int = 0
    last_batch_users: int = 0
    requests_by_version: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        payload = dict(vars(self))
        payload["requests_by_version"] = dict(self.requests_by_version)
        return payload


@dataclass
class _PendingRequest:
    """A queued single-user request, resolved at the next flush."""

    user: int
    result: Optional[Recommendation] = field(default=None)

    @property
    def ready(self) -> bool:
        return self.result is not None


class RecommendationService:
    """Serves top-K requests over a live (hot-swappable) model.

    Parameters
    ----------
    source:
        Either a :class:`ModelStore` (hot reload across published
        versions) or a plain :class:`FactorModel` (fixed version 0).
    k:
        Slate size returned for every request.
    batch_size:
        Coalescing threshold: :meth:`enqueue` auto-flushes when this
        many distinct users are pending.  ``"auto"`` resolves through
        the active :class:`repro.tune.TunedProfile` when one is loaded
        and to :data:`DEFAULT_SERVICE_BATCH` otherwise.
    cache_size:
        Maximum ``(version, user)`` entries kept in the LRU cache.
    exclude:
        Optional training matrix; already-rated items never appear in a
        slate (see :class:`Scorer`).
    chunk_items:
        Item-axis tile width of the underlying scorer (``"auto"``:
        profile-resolved, falling back to :data:`DEFAULT_CHUNK_ITEMS`).
    model_version:
        Version number reported (and used as the cache key) when
        ``source`` is a plain :class:`FactorModel`.  Reader processes
        serving a store-published model through :func:`attach_model`
        pass the handle's version here so their caches and stats speak
        the store's version numbers; ignored for a ``ModelStore``
        source, whose lease provides the version.
    ann:
        Serve from the approximate :class:`~repro.serve.ann.AnnScorer`
        tier instead of the exact scorer.  Requires an index: either
        every published version of a ``ModelStore`` source carries one
        (``store.publish(model, index=...)``), or ``index`` is passed
        explicitly for a plain-model source.
    nprobe:
        Inverted lists probed per request on the ANN tier (the
        recall/throughput dial; ignored without ``ann``).
    index:
        The :class:`~repro.serve.ann.IvfIndex` to serve from when
        ``source`` is a plain :class:`FactorModel` (reader processes get
        it from ``attach_model(handle, with_index=True)``).  Ignored for
        a ``ModelStore`` source, whose lease provides the index — model
        and index always come from one lease, so a hot swap can never
        pair factors and index from different versions.
    """

    def __init__(
        self,
        source: Union[ModelStore, FactorModel],
        k: int = 10,
        batch_size: Union[int, str] = DEFAULT_SERVICE_BATCH,
        cache_size: int = 4096,
        exclude: Optional[SparseRatingMatrix] = None,
        chunk_items: Union[int, str] = DEFAULT_CHUNK_ITEMS,
        model_version: int = 0,
        ann: bool = False,
        nprobe: int = DEFAULT_NPROBE,
        index: Optional[IvfIndex] = None,
    ) -> None:
        batch_size = resolve_serving_batch_size(batch_size, DEFAULT_SERVICE_BATCH)
        chunk_items = resolve_serving_chunk_items(chunk_items, DEFAULT_CHUNK_ITEMS)
        if k <= 0:
            raise ExecutionError(f"k must be positive, got {k}")
        if batch_size <= 0:
            raise ExecutionError(f"batch_size must be positive, got {batch_size}")
        if cache_size < 0:
            raise ExecutionError(f"cache_size must be >= 0, got {cache_size}")
        self.k = int(k)
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)
        self._exclude = exclude
        self._chunk_items = chunk_items
        self._ann = bool(ann)
        self._nprobe = int(nprobe)
        self._cache: "OrderedDict[Tuple[int, int], Recommendation]" = OrderedDict()
        self._pending: "OrderedDict[int, List[_PendingRequest]]" = OrderedDict()
        self.stats = ServiceStats()
        self._closed = False

        self._store: Optional[ModelStore] = None
        self._lease: Optional[ModelLease] = None
        if isinstance(source, ModelStore):
            self._store = source
            self._lease = source.acquire()
            self._version = self._lease.version
            try:
                self._scorer = self._make_scorer(
                    self._lease.model, self._lease.index
                )
            except Exception:
                # Never leak the lease (it pins the segment) when the
                # scorer cannot be built, e.g. ann=True with no index.
                self._lease.release()
                self._lease = None
                raise
        else:
            self._version = int(model_version)
            self._scorer = self._make_scorer(source, index)

    def _make_scorer(
        self, model: FactorModel, index: Optional[IvfIndex]
    ) -> Union[Scorer, AnnScorer]:
        if not self._ann:
            return Scorer(
                model, exclude=self._exclude, chunk_items=self._chunk_items
            )
        if index is None:
            raise ExecutionError(
                "ann=True requires an index: publish the model with one "
                "(store.publish(model, index=...)) or pass index= for a "
                "plain-model source"
            )
        return AnnScorer(
            model,
            index,
            exclude=self._exclude,
            nprobe=self._nprobe,
            chunk_items=self._chunk_items,
        )

    @property
    def tier(self) -> str:
        """``"ann"`` or ``"exact"`` — which scorer tier serves requests."""
        return getattr(self._scorer, "tier", "exact")

    # ------------------------------------------------------------------ #
    # Hot reload
    # ------------------------------------------------------------------ #
    @property
    def model_version(self) -> int:
        """The version currently being served from."""
        return self._version

    @property
    def queue_depth(self) -> int:
        """Distinct users currently pending the next coalesced flush."""
        return len(self._pending)

    def _maybe_reload(self) -> None:
        """Re-lease onto the store's current version if it moved.

        Called at every flush boundary — a batch is scored entirely
        against one version, so a mid-batch swap can never mix factors.

        A failed re-lease (the version was retired or the store closed
        under us) degrades gracefully: the failure is counted and the
        service keeps serving from its current, still-pinned lease
        instead of turning a serving request into a crash.
        """
        if self._store is None:
            return
        current = self._store.current_version
        if current is None or current == self._version:
            return
        old_lease = self._lease
        try:
            new_lease = self._store.acquire()
        except ExecutionError:
            self.stats.reload_failures += 1
            return
        try:
            # On the ANN tier this also rejects a version published
            # without an index, keeping the old (consistent) pair live.
            scorer = self._make_scorer(new_lease.model, new_lease.index)
        except ExecutionError:
            new_lease.release()
            self.stats.reload_failures += 1
            return
        self._lease = new_lease
        self._version = new_lease.version
        self._scorer = scorer
        if old_lease is not None:
            old_lease.release()
        self.stats.reloads += 1

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("the recommendation service is closed")

    def _cache_get(self, user: int) -> Optional[Recommendation]:
        key = (self._version, user)
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
        return hit

    def _cache_put(self, result: Recommendation) -> None:
        if self.cache_size == 0:
            return
        self._cache[(result.model_version, result.user)] = result
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def enqueue(self, user: int) -> _PendingRequest:
        """Queue one user for the next coalesced scoring batch.

        Returns a pending handle whose ``result`` is filled by the flush
        that scores it; enqueueing the ``batch_size``-th distinct user
        flushes automatically.  Cached users resolve immediately.
        """
        self._check_open()
        # Notice a hot-swap *before* the cache lookup: the cache key's
        # version component must roll immediately, or cached users would
        # keep being served from the retired model.
        self._maybe_reload()
        user = int(user)
        self.stats.requests += 1
        self.stats.requests_by_version[self._version] = (
            self.stats.requests_by_version.get(self._version, 0) + 1
        )
        hit = self._cache_get(user)
        if hit is not None:
            self.stats.cache_hits += 1
            return _PendingRequest(user=user, result=hit)
        request = _PendingRequest(user=user)
        self._pending.setdefault(user, []).append(request)
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._pending))
        if len(self._pending) >= self.batch_size:
            self.flush()
        return request

    def flush(self) -> int:
        """Score every pending user in one batch; returns the batch size.

        Duplicate requests for the same user share one scored row.  The
        model version is re-checked here, so a flush is also the hot
        reload boundary.
        """
        self._check_open()
        if not self._pending:
            return 0
        self._maybe_reload()
        pending, self._pending = self._pending, OrderedDict()
        # A reload may have made cache entries for the new version
        # available; serve those without scoring.
        users: List[int] = []
        for user, requests in list(pending.items()):
            hit = self._cache_get(user)
            if hit is not None:
                self.stats.cache_hits += len(requests)
                for request in requests:
                    request.result = hit
                del pending[user]
            else:
                users.append(user)
        if users:
            batch = np.asarray(users, dtype=np.int64)
            items, scores = self._scorer.top_k(batch, self.k)
            self.stats.batches_scored += 1
            self.stats.users_scored += len(users)
            self.stats.last_batch_users = len(users)
            for row, user in enumerate(users):
                result = Recommendation(
                    user=user,
                    model_version=self._version,
                    items=items[row],
                    scores=scores[row],
                )
                self._cache_put(result)
                for request in pending[user]:
                    request.result = result
        return len(users)

    def recommend(self, user: int) -> Recommendation:
        """Serve one user synchronously (cache, then coalesced batch).

        A miss flushes the current pending batch including this user, so
        interactive callers still benefit from whatever has queued up.
        """
        request = self.enqueue(user)
        if not request.ready:
            self.flush()
        return request.result

    def recommend_many(self, users: Sequence[int]) -> List[Recommendation]:
        """Serve a batch of users (cache-checked, one scoring call)."""
        requests = [self.enqueue(int(user)) for user in users]
        self.flush()
        return [request.result for request in requests]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the model lease (idempotent).  Pending requests are
        dropped; the store itself belongs to the caller."""
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        self._cache.clear()
        self._scorer = None
        if self._lease is not None:
            self._lease.release()
            self._lease = None

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RecommendationService(version={self._version}, k={self.k}, "
            f"batch_size={self.batch_size}, pending={len(self._pending)}, "
            f"cached={len(self._cache)})"
        )
