"""Versioned publication of factor models into shared memory.

Serving wants N reader processes scoring against the *same* trained
model without N copies of ``Q`` — on the Netflix-scale configurations
the paper targets, the factors are hundreds of megabytes and the readers
are an autoscaled pool.  :class:`ModelStore` reuses the training stack's
shared-memory substrate (:class:`repro.shm.SharedSegment`, the same
pages-not-pickles channel the ``"processes"`` backend trains over):

* :meth:`ModelStore.publish` copies a :class:`~repro.sgd.FactorModel`
  into **one** fresh segment per version — ``P`` first, then ``Q``
  stored item-major, preserving the model's layout contract — and
  atomically swaps the store's *current* pointer to it;
* readers attach by the version's :class:`ModelHandle` (a picklable
  name + shapes descriptor) with :func:`attach_model`, building a
  zero-copy :class:`~repro.sgd.FactorModel` over read-only views via
  ``FactorModel.over_buffers``;
* hot-swap is **refcounted**: every in-process lease
  (:meth:`ModelStore.acquire`) pins its version, and a retired version's
  segment is unlinked exactly when its last lease is released.  Reader
  *processes* that attached before the unlink keep working — POSIX
  removes the name, not the mapped pages — so a swap never tears a
  request mid-score (see DESIGN.md, "The serving memory model").

The store is the single owner of every segment it creates; ``close()``
is idempotent and the lifecycle tests assert
:func:`repro.shm.live_segment_names` is empty afterwards, exactly like
the training engines.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import faults
from ..exceptions import ExecutionError, InvalidMatrixError
from ..faults import FaultInjected
from ..sgd.model import FactorModel
from ..shm import SharedSegment
from .ann.index import AnnIndexMeta, IvfIndex

#: Value of the first commit-stamp word.  Written *after* the factor
#: payload, so its presence proves the publisher survived the copy.
COMMIT_MAGIC = 0x5245_5052_4F5F_4F4B  # b"REPRO_OK" as a big-endian u64

#: Trailing commit stamp: ``[COMMIT_MAGIC, payload_nbytes]`` as uint64.
STAMP_NBYTES = 16


@dataclass(frozen=True)
class ModelHandle:
    """Picklable descriptor of one published model version.

    Carries everything a reader process needs to map the model
    zero-copy: the segment name, the shapes, and the version number the
    service uses as its cache key.  ``Q`` occupies the segment
    item-major starting at byte ``m * k * 8``; when an ANN index was
    published with the model, its packed arrays follow ``Q`` (layout in
    :mod:`repro.serve.ann.index`, described by ``index``); the segment
    ends with a 16-byte commit stamp (see :data:`COMMIT_MAGIC`) written
    after everything else, which is what lets readers reject a torn
    publish.  Model and index share one segment, one version, one stamp
    — a reader can never observe version N factors next to version M
    index arrays.
    """

    version: int
    segment: str
    n_rows: int
    n_cols: int
    latent_factors: int
    index: Optional[AnnIndexMeta] = None

    @property
    def model_nbytes(self) -> int:
        """Bytes of ``P`` plus ``Q`` (the index, if any, starts here)."""
        return (self.n_rows + self.n_cols) * self.latent_factors * 8

    @property
    def nbytes(self) -> int:
        """Payload size: factors plus packed index (stamp excluded)."""
        return self.model_nbytes + (self.index.nbytes if self.index else 0)

    @property
    def total_nbytes(self) -> int:
        """Allocated segment size: payload plus the commit stamp."""
        return self.nbytes + STAMP_NBYTES

    def save(self, path: str) -> None:
        """Write the handle as JSON, for cross-process attachment.

        The file is the CLI's rendezvous: ``repro serve --handle-out``
        writes it, ``repro recommend --attach`` / ``repro serve-bench
        --attach`` read it back.  The handle describes a segment, not
        the model data — the file stays valid exactly as long as its
        version remains published.
        """
        raw = {
            "version": self.version,
            "segment": self.segment,
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "latent_factors": self.latent_factors,
        }
        if self.index is not None:
            raw["index"] = self.index.as_dict()
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(raw, stream, indent=2)
            stream.write("\n")

    @classmethod
    def load(cls, path: str) -> "ModelHandle":
        """Read a handle written by :meth:`save`; clear errors on junk."""
        try:
            with open(path, "r", encoding="utf-8") as stream:
                raw = json.load(stream)
        except FileNotFoundError:
            raise ExecutionError(f"no model handle at {path!r}") from None
        except json.JSONDecodeError as exc:
            raise ExecutionError(f"{path!r} is not a model handle: {exc}") from None
        expected = {"version", "segment", "n_rows", "n_cols", "latent_factors"}
        if not isinstance(raw, dict) or set(raw) - {"index"} != expected:
            raise ExecutionError(
                f"{path!r} is not a model handle (fields {sorted(expected)} required)"
            )
        try:
            # "index" is optional: handles written before the ANN tier
            # (or for index-less publishes) load as model-only handles.
            index = raw.get("index")
            return cls(
                version=int(raw["version"]),
                segment=str(raw["segment"]),
                n_rows=int(raw["n_rows"]),
                n_cols=int(raw["n_cols"]),
                latent_factors=int(raw["latent_factors"]),
                index=AnnIndexMeta.from_dict(index) if index is not None else None,
            )
        except (KeyError, TypeError, ValueError, InvalidMatrixError) as exc:
            raise ExecutionError(f"{path!r} holds a malformed handle: {exc}") from None


def _stamp_view(segment: SharedSegment, payload_nbytes: int) -> np.ndarray:
    return segment.ndarray((2,), np.uint64, offset=payload_nbytes)


def _check_committed(segment: SharedSegment, handle: ModelHandle) -> None:
    """Reject a segment whose publisher died before the commit stamp.

    A publish writes ``P``, then ``Q``, then the trailing stamp — so a
    present, correct stamp proves the whole payload landed.  Raising
    here (instead of serving garbage factors) is what makes publication
    crash-*atomic* for readers: a version either attaches whole or not
    at all.
    """
    stamp = _stamp_view(segment, handle.nbytes)
    magic, size = int(stamp[0]), int(stamp[1])
    del stamp  # drop the view before a potential close()
    if magic != COMMIT_MAGIC or size != handle.nbytes:
        segment.close()
        raise ExecutionError(
            f"segment {handle.segment!r} holds a torn publish of version "
            f"{handle.version} (its publisher died before committing); "
            "refusing to attach — reap it with `repro gc-shm`"
        )


def _model_views(
    segment: SharedSegment, handle: ModelHandle, readonly: bool
) -> FactorModel:
    """Build the zero-copy model over a mapped segment."""
    m, n, k = handle.n_rows, handle.n_cols, handle.latent_factors
    p = segment.ndarray((m, k), np.float64, readonly=readonly)
    q = segment.ndarray(
        (n, k), np.float64, offset=m * k * 8, readonly=readonly
    ).T
    return FactorModel.over_buffers(p, q)


def attach_model(handle: ModelHandle, with_index: bool = False):
    """Map a published version in a reader process (no copies).

    Returns ``(model, segment)``, or ``(model, index, segment)`` with
    ``with_index=True`` — where ``index`` is a zero-copy
    :class:`~repro.serve.ann.IvfIndex` over the same segment, or
    ``None`` if the version was published without one.  The caller must
    ``segment.close()`` when done (after dropping the model and index,
    which pin the mapping).  The views are read-only — readers share one
    physical copy of the factors, and a stray in-place write would
    corrupt every reader.

    Model and index come from one handle over one stamped segment, so
    the pair is atomic by construction: there is no interleaving of
    attach calls that can pair version N factors with version M index
    arrays.

    The segment's trailing commit stamp is verified before any view is
    taken: a torn publish (publisher died mid-copy) raises
    :class:`~repro.exceptions.ExecutionError` instead of ever serving
    half-written factors.
    """
    segment = SharedSegment.attach(handle.segment)
    try:
        _check_committed(segment, handle)
        model = _model_views(segment, handle, readonly=True)
        if not with_index:
            return model, segment
        index = None
        if handle.index is not None:
            index = IvfIndex.attach(
                segment, handle.model_nbytes, handle.index, readonly=True
            )
        return model, index, segment
    except ExecutionError:
        if not segment.closed:
            segment.close()
        raise


class ModelLease:
    """One acquired reference to a published version (publisher side).

    Holds a zero-copy read-only :class:`FactorModel` over the version's
    segment and pins the segment against unlink until :meth:`release` —
    which the store calls the hot-swap "refcount".  When the version was
    published with an ANN index, ``index`` is the zero-copy
    :class:`~repro.serve.ann.IvfIndex` over the same segment (else
    ``None``).  Usable as a context manager.
    """

    def __init__(
        self,
        store: "ModelStore",
        handle: ModelHandle,
        model: FactorModel,
        index: Optional[IvfIndex] = None,
    ) -> None:
        self._store = store
        self.handle = handle
        self.model = model
        self.index = index
        self._released = False

    @property
    def version(self) -> int:
        """The pinned version number."""
        return self.handle.version

    def release(self) -> None:
        """Unpin the version (idempotent); may trigger a deferred unlink."""
        if self._released:
            return
        self._released = True
        self.model = None  # drop the views pinning the buffer
        self.index = None
        self._store._release(self.handle.version)

    def __enter__(self) -> "ModelLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@dataclass
class _Published:
    """Store-internal record of one version's segment and refcount."""

    handle: ModelHandle
    segment: SharedSegment
    refcount: int = 0
    retired: bool = False


class ModelStore:
    """Publishes model versions into shared memory with atomic hot-swap.

    Typical lifecycle::

        store = ModelStore()
        v1 = store.publish(trained_model)        # version 1 live
        handle = store.current_handle()          # ship to reader processes
        ...
        store.publish(retrained_model)           # hot-swap: version 2 live,
                                                 # v1 unlinked once unpinned
        store.close()                            # everything unlinked

    Thread-safety: all state is guarded by one lock; ``publish`` builds
    the new segment outside the lock and swaps the current pointer
    inside it, so readers never observe a half-written version.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: Dict[int, _Published] = {}
        self._current: Optional[int] = None
        self._next_version = 1
        self._closed = False

    # ------------------------------------------------------------------ #
    # Publication
    # ------------------------------------------------------------------ #
    def publish(
        self, model: FactorModel, index: Optional[IvfIndex] = None
    ) -> ModelHandle:
        """Copy ``model`` (and optionally its ANN ``index``) into a
        fresh segment and make it current.

        The index rides the same segment, version and commit stamp as
        the factors, so readers attach the pair atomically — hot-swap
        can never mix one version's factors with another's index.

        The previous current version (if any) is retired: it stays
        mapped for exactly as long as leases pin it, then its segment is
        unlinked.  Returns the new version's handle.
        """
        if self._closed:
            raise ExecutionError("the model store is closed")
        m, k = model.p.shape
        n = model.q.shape[1]
        meta = None
        if index is not None:
            meta = index.meta
            if meta.n_items != n or meta.dim != k:
                raise InvalidMatrixError(
                    f"index shape ({meta.n_items} items, dim {meta.dim}) "
                    f"does not match the model ({n} items, k={k})"
                )
        model_nbytes = (m + n) * k * 8
        payload = model_nbytes + (meta.nbytes if meta else 0)
        segment = SharedSegment.create(payload + STAMP_NBYTES, purpose="model")
        try:
            segment.ndarray((m, k), np.float64)[...] = model.p
            # Item-major Q, preserving FactorModel's layout contract so
            # readers keep the block-major gather-friendly layout.
            segment.ndarray((n, k), np.float64, offset=m * k * 8)[...] = model.q.T
            if index is not None:
                index.pack_into(segment, model_nbytes)
            # Commit stamp LAST: a publisher death anywhere above leaves
            # a stamp-less segment that attach_model refuses to map.
            faults.hit("store.publish.pre_commit", segment=segment.name)
            _stamp_view(segment, payload)[...] = (COMMIT_MAGIC, payload)
        except FaultInjected:
            # A simulated crash between write and commit: leave the torn
            # segment named (the manifest keeps it discoverable for
            # `repro gc-shm`), exactly as a real death would.
            segment.abandon()
            raise
        except BaseException:  # pragma: no cover - copy cannot really fail
            segment.unlink()
            raise
        with self._lock:
            if self._closed:
                # close() won the race while the factors were being
                # copied; registering the segment now would leak it
                # forever (close is idempotent and will not run again).
                segment.unlink()
                raise ExecutionError("the model store is closed")
            version = self._next_version
            self._next_version += 1
            handle = ModelHandle(
                version=version,
                segment=segment.name,
                n_rows=m,
                n_cols=n,
                latent_factors=k,
                index=meta,
            )
            self._versions[version] = _Published(handle=handle, segment=segment)
            previous, self._current = self._current, version
            if previous is not None:
                self._retire_locked(previous)
        return handle

    def _retire_locked(self, version: int) -> None:
        record = self._versions.get(version)
        if record is None or record.retired:
            return
        record.retired = True
        if record.refcount == 0:
            self._unlink_locked(version)

    def _unlink_locked(self, version: int) -> None:
        record = self._versions.pop(version)
        record.segment.unlink()

    def _release(self, version: int) -> None:
        with self._lock:
            record = self._versions.get(version)
            if record is None:  # pragma: no cover - release after close
                return
            record.refcount -= 1
            if record.retired and record.refcount <= 0:
                self._unlink_locked(version)

    # ------------------------------------------------------------------ #
    # Introspection / acquisition
    # ------------------------------------------------------------------ #
    @property
    def current_version(self) -> Optional[int]:
        """Version number of the live model (``None`` before the first
        publish)."""
        with self._lock:
            return self._current

    @property
    def live_versions(self) -> Tuple[int, ...]:
        """Versions whose segments still exist (current + pinned retirees)."""
        with self._lock:
            return tuple(sorted(self._versions))

    def current_handle(self) -> ModelHandle:
        """The live version's handle (ship this to reader processes)."""
        with self._lock:
            if self._current is None:
                raise ExecutionError("no model has been published yet")
            return self._versions[self._current].handle

    def acquire(self, version: Optional[int] = None) -> ModelLease:
        """Pin a version (default: current) and map it zero-copy.

        The lease's model shares the published pages; release it to let
        a retired version's segment be unlinked.
        """
        with self._lock:
            if self._closed:
                raise ExecutionError("the model store is closed")
            if version is None:
                version = self._current
            record = self._versions.get(version) if version is not None else None
            if record is None:
                raise ExecutionError(
                    f"model version {version!r} is not available (published "
                    f"versions: {sorted(self._versions)})"
                )
            record.refcount += 1
            handle, segment = record.handle, record.segment
        model = _model_views(segment, handle, readonly=True)
        index = None
        if handle.index is not None:
            index = IvfIndex.attach(
                segment, handle.model_nbytes, handle.index, readonly=True
            )
        return ModelLease(self, handle, model, index)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Unlink every remaining segment (idempotent).

        Raises if a version is still pinned by an unreleased lease: its
        numpy views hold the mapping open, so unlinking now would leave
        lifecycle state inconsistent.  Release (or ``with``-scope) every
        lease before closing the store.  Reader *processes* are
        unaffected either way — unlink removes the segment's name, not
        pages they already mapped.
        """
        with self._lock:
            if self._closed:
                return
            pinned = sorted(
                version
                for version, record in self._versions.items()
                if record.refcount > 0
            )
            if pinned:
                raise ExecutionError(
                    f"cannot close the model store: version(s) {pinned} "
                    "still have unreleased leases"
                )
            self._closed = True
            self._current = None
            for version in sorted(self._versions):
                self._unlink_locked(version)

    def __enter__(self) -> "ModelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelStore(current={self._current}, "
            f"live={list(self._versions)}, closed={self._closed})"
        )
