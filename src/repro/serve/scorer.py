"""Batch top-K scoring over a trained factor model.

The training stack produces a :class:`~repro.sgd.FactorModel`; the thing
a recommender actually serves is "the K items this user would rate
highest".  Computed naively — one ``p_u @ Q`` matvec and one
``argpartition`` per user — scoring is BLAS-2 plus per-call Python
overhead and saturates far below memory bandwidth.  :class:`Scorer`
instead scores **user batches** with one ``P[batch] @ Q_chunk`` BLAS-3
matmul per *item chunk*:

* batching turns ``B`` matvecs into one ``(B, k) @ (k, chunk)`` matmul;
* chunking the item axis bounds the scores working set to
  ``B x chunk_size`` floats, so the hot loop stays cache-resident no
  matter how large the catalogue grows, and the per-chunk top-K merge
  keeps only ``B x K`` running candidates.

Determinism contract: ranking is by **score descending, item id
ascending among exact ties** — the same total order a brute-force
``lexsort`` reference produces — so chunk boundaries and
``argpartition``'s arbitrary tie handling can never change a result
(pinned bitwise against :func:`brute_force_top_k` by the test suite).

Already-rated items can be excluded per user through the training
matrix's CSR rows (:meth:`repro.sparse.SparseRatingMatrix.csr_rows`):
each chunk masks the slice of a user's sorted item list that falls
inside the chunk's item interval, found with two ``searchsorted`` calls.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..exceptions import InvalidMatrixError
from ..sgd.model import FactorModel
from ..sparse import SparseRatingMatrix
from ..tune.profile import resolve_serving_chunk_items

#: Default number of items scored per chunk.  8192 items x 64 users x 8
#: bytes is a 4 MiB scores tile — comfortably inside L2/L3 on anything
#: the serving layer targets.
DEFAULT_CHUNK_ITEMS = 8192

#: Score assigned to excluded (already-rated) items; sorts after every
#: real score, so excluded items can only surface when a user has fewer
#: than K unseen items — and then with the sentinel index below.
_MASKED_SCORE = -np.inf

#: Item index reported for padding slots (K larger than the number of
#: rankable items for that user).
PAD_ITEM = -1


def _top_k_rows(scores: np.ndarray, item_ids: np.ndarray, k: int
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Exact per-row top-``k`` of a dense score tile.

    ``scores`` is ``(B, c)``; ``item_ids`` the global item id of each of
    the ``c`` columns.  Returns ``(ids, vals)`` of shape ``(B, min(k, c))``
    sorted by the determinism contract (score desc, id asc).

    The fast path is one vectorised ``argpartition`` per tile; ties at
    the selection boundary are the only case where ``argpartition`` may
    pick the *wrong* equal-scored columns (a larger id kept over a
    smaller one), so boundary-tied rows are detected and re-ranked
    exactly.  Ties are rare in real float scores; the exact fallback is
    per-row and costs one lexsort of the row.
    """
    b, c = scores.shape
    k = min(k, c)
    if k == c:
        selected = np.broadcast_to(np.arange(c), (b, c))
    else:
        selected = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        sel_scores = np.take_along_axis(scores, selected, axis=1)
        # Boundary-tie audit: a row is suspect when the number of
        # columns scoring >= its k-th selected score exceeds k — some
        # equal-scored column was left out and the id tie-break may be
        # violated.
        kth = sel_scores.min(axis=1)
        suspects = np.nonzero((scores >= kth[:, None]).sum(axis=1) > k)[0]
        for row in suspects:
            order = np.lexsort((item_ids, -scores[row]))[:k]
            selected[row] = order
    vals = np.take_along_axis(scores, selected, axis=1)
    ids = item_ids[selected]
    # Final per-row ordering: score desc, id asc.  lexsort keys are
    # applied last-key-major, so (ids, -vals) ranks by -vals first.
    order = np.lexsort((ids, -vals), axis=1)
    return (
        np.take_along_axis(ids, order, axis=1),
        np.take_along_axis(vals, order, axis=1),
    )


def _merge_top_k(
    ids_a: np.ndarray, vals_a: np.ndarray,
    ids_b: np.ndarray, vals_b: np.ndarray,
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two per-row candidate sets, keeping the best ``k`` of each row.

    Both inputs follow the determinism contract; the pool per row is at
    most ``2k`` candidates, so an exact lexsort is cheap.
    """
    ids = np.concatenate([ids_a, ids_b], axis=1)
    vals = np.concatenate([vals_a, vals_b], axis=1)
    order = np.lexsort((ids, -vals), axis=1)[:, : min(k, ids.shape[1])]
    return (
        np.take_along_axis(ids, order, axis=1),
        np.take_along_axis(vals, order, axis=1),
    )


def brute_force_top_k(
    scores: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference top-``k`` over a full ``(B, n)`` score matrix.

    Full per-row lexsort by (score desc, id asc) — the specification the
    chunked scorer is pinned against, and the "naive full-matmul"
    baseline of the serving benchmark.
    """
    n = scores.shape[1]
    ids = np.broadcast_to(np.arange(n, dtype=np.int64), scores.shape)
    order = np.lexsort((ids, -scores), axis=1)[:, : min(k, n)]
    return order.astype(np.int64), np.take_along_axis(scores, order, axis=1)


class Scorer:
    """Chunked batch top-K scoring over a :class:`FactorModel`.

    Parameters
    ----------
    model:
        The trained factor model.  The scorer only reads ``P`` and ``Q``
        — it works identically over private arrays and over
        shared-memory views published by
        :class:`~repro.serve.ModelStore`.
    exclude:
        Optional training matrix (or a precomputed ``(indptr, indices)``
        CSR pair).  When given, items a user has already rated are
        excluded from that user's candidates.
    chunk_items:
        Item-axis tile width; bounds the scores working set to
        ``batch x chunk_items`` floats.  ``"auto"`` resolves through the
        active :class:`repro.tune.TunedProfile` when one is loaded and
        to :data:`DEFAULT_CHUNK_ITEMS` otherwise.

    Notes
    -----
    Output shape is ``(B, k_eff)`` with ``k_eff = min(k, n)``.  Rows of
    users with fewer than ``k_eff`` rankable (unseen) items are padded
    at the tail with item id :data:`PAD_ITEM` and score ``-inf``.
    """

    #: Tier label used by benchmarks and ``/stats`` (the approximate
    #: scorer reports ``"ann"``); see :class:`repro.serve.ann.AnnScorer`.
    tier = "exact"

    def __init__(
        self,
        model: FactorModel,
        exclude: Optional[
            Union[SparseRatingMatrix, Tuple[np.ndarray, np.ndarray]]
        ] = None,
        chunk_items: Union[int, str] = DEFAULT_CHUNK_ITEMS,
    ) -> None:
        chunk_items = resolve_serving_chunk_items(chunk_items, DEFAULT_CHUNK_ITEMS)
        if chunk_items <= 0:
            raise InvalidMatrixError(
                f"chunk_items must be positive, got {chunk_items}"
            )
        self.model = model
        self.chunk_items = int(chunk_items)
        self._indptr: Optional[np.ndarray] = None
        self._seen: Optional[np.ndarray] = None
        if exclude is not None:
            if isinstance(exclude, SparseRatingMatrix):
                if exclude.shape != model.shape:
                    raise InvalidMatrixError(
                        f"exclusion matrix shape {exclude.shape} does not "
                        f"match the model shape {model.shape}"
                    )
                self._indptr, self._seen = exclude.csr_rows()
            else:
                self._indptr, self._seen = exclude
                if len(self._indptr) != model.shape[0] + 1:
                    raise InvalidMatrixError(
                        f"CSR indptr length {len(self._indptr)} does not "
                        f"match the model's {model.shape[0]} users"
                    )

    @property
    def n_items(self) -> int:
        """Catalogue size ``n``."""
        return self.model.shape[1]

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def _mask_seen(
        self, scores: np.ndarray, users: np.ndarray, start: int, stop: int
    ) -> None:
        """Mask each user's already-rated items inside ``[start, stop)``.

        The CSR rows are sorted, so the slice of a user's item list that
        falls in the chunk is a ``searchsorted`` interval.
        """
        indptr, seen = self._indptr, self._seen
        for i, user in enumerate(users):
            row = seen[indptr[user] : indptr[user + 1]]
            lo, hi = np.searchsorted(row, (start, stop))
            if lo < hi:
                scores[i, row[lo:hi] - start] = _MASKED_SCORE

    def top_k(
        self, users: np.ndarray, k: int = 10
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` items for a batch of users.

        Returns ``(items, scores)``, both of shape ``(B, min(k, n))``,
        rows ordered score-descending with ascending item id breaking
        exact ties.  Excluded or missing tail slots hold
        (:data:`PAD_ITEM`, ``-inf``).
        """
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        if users.ndim != 1:
            raise InvalidMatrixError("users must be a 1-D array of ids")
        m, n = self.model.shape
        if users.size and (users.min() < 0 or users.max() >= m):
            raise InvalidMatrixError(
                f"user indices must lie in [0, {m}), got range "
                f"[{users.min()}, {users.max()}]"
            )
        if k <= 0:
            raise InvalidMatrixError(f"k must be positive, got {k}")
        k_eff = min(k, n)
        if users.size == 0:
            return (
                np.empty((0, k_eff), dtype=np.int64),
                np.empty((0, k_eff), dtype=np.float64),
            )

        p_batch = self.model.p[users]
        q = self.model.q
        best_ids = np.empty((users.size, 0), dtype=np.int64)
        best_vals = np.empty((users.size, 0), dtype=np.float64)
        for start in range(0, n, self.chunk_items):
            stop = min(start + self.chunk_items, n)
            scores = p_batch @ q[:, start:stop]
            if self._indptr is not None:
                self._mask_seen(scores, users, start, stop)
            ids, vals = _top_k_rows(
                scores, np.arange(start, stop, dtype=np.int64), k_eff
            )
            if best_ids.shape[1] == 0:
                best_ids, best_vals = ids, vals
            else:
                best_ids, best_vals = _merge_top_k(
                    best_ids, best_vals, ids, vals, k_eff
                )
        # Masked items must never be *reported*: replace their ids with
        # the padding sentinel (they are already sorted to the tail).
        padding = np.isneginf(best_vals)
        if padding.any():
            best_ids = best_ids.copy()
            best_ids[padding] = PAD_ITEM
        return best_ids, best_vals

    def top_k_single(self, user: int, k: int = 10) -> np.ndarray:
        """Item ids of one user's top-``k`` (convenience wrapper)."""
        ids, _ = self.top_k(np.asarray([user]), k)
        return ids[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m, n = self.model.shape
        masked = self._indptr is not None
        return (
            f"Scorer(m={m}, n={n}, chunk_items={self.chunk_items}, "
            f"exclude={'csr' if masked else 'none'})"
        )
