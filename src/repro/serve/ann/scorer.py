"""Approximate batch top-K scoring behind the exact scorer's contract.

:class:`AnnScorer` is a drop-in for :class:`repro.serve.Scorer` — same
``top_k(users, k) -> (items, scores)`` signature, same output shapes,
same padding sentinel, same (score desc, id asc) ordering — that scores
only the items of the ``nprobe`` inverted lists whose centroids rank
highest for each user, instead of the whole catalogue:

1. **probe** — one ``P[batch] @ centroids.T`` GEMM ranks the coarse
   lists per user (inner product, centroid id breaking exact ties);
2. **candidate scoring** — the batch is regrouped *by list*: every
   probed list is scored once per batch with one gathered
   ``P[subset] @ Q[:, list]`` GEMM tile (the same chunked-GEMM machinery
   and ``_top_k_rows`` boundary-tie audit the exact scorer uses), so a
   list shared by many users costs one matmul, not one per user.  With
   PQ enabled, large lists are first scored from per-user lookup tables
   over the one-byte codes (asymmetric distance computation) and only a
   per-user shortlist survives;
3. **exact re-rank** — every reported score is a true ``p_u . q_v``
   float64 inner product, merged across lists under the exact scorer's
   determinism contract.  Approximation only ever narrows the candidate
   set; it never perturbs a reported score.

Consequences of that design:

* with ``nprobe == nlist`` (and, under PQ, a shortlist covering every
  candidate) the results are **identical** to the exact scorer's — the
  test suite pins this;
* results are independent of batch composition and of the re-rank tile
  width ``chunk_items``: a user's slate depends only on (model, index,
  nprobe, PQ settings), never on who shares the batch — pinned too;
* already-rated items are masked *post-candidate* (inside each scored
  tile, before any selection), so exclusion semantics match the exact
  path: a seen item never appears, an all-seen user pads with
  :data:`~repro.serve.PAD_ITEM`.

The trade-off surface is ``(nlist, nprobe)``: serving cost scales with
the probed fraction ``nprobe/nlist`` while recall@K degrades as probes
shrink.  ``BENCH_serve.json`` carries the measured users/s-vs-recall
frontier; DESIGN.md ("Approximate retrieval memory model") has tuning
guidance.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ...exceptions import InvalidMatrixError
from ...sgd.model import FactorModel
from ...sparse import SparseRatingMatrix
from ...tune.profile import resolve_serving_chunk_items
from ..scorer import (
    DEFAULT_CHUNK_ITEMS,
    PAD_ITEM,
    _MASKED_SCORE,
    _merge_top_k,
    _top_k_rows,
)
from .index import DEFAULT_NPROBE, IvfIndex

#: With PQ enabled, each user keeps ``pq_refine * k`` approximate-best
#: candidates per batch for the exact re-rank.
DEFAULT_PQ_REFINE = 8


class AnnScorer:
    """IVF(/PQ) approximate top-K over a :class:`FactorModel`.

    Parameters
    ----------
    model:
        The factor model; only ``P`` and ``Q`` are read, so shared
        read-only views published by :class:`~repro.serve.ModelStore`
        work identically to private arrays.
    index:
        An :class:`IvfIndex` built over (or attached alongside) exactly
        this model's item factors.
    exclude:
        Optional training matrix (or precomputed ``(indptr, indices)``
        CSR pair); a user's already-rated items never appear in their
        slate, matching the exact scorer's masking semantics.
    nprobe:
        Inverted lists probed per user; clamped to ``nlist``.  The
        recall/throughput dial.
    chunk_items:
        Tile width of the exact re-rank GEMM over one list's candidates
        (results are independent of it; pinned by tests).
    pq_refine:
        Only with a PQ-enabled index: shortlist length multiplier (the
        exact re-rank sees ``pq_refine * k`` candidates per user).
    use_pq:
        Set ``False`` to ignore a PQ-enabled index's codes and re-rank
        every candidate exactly (useful for measuring what PQ costs).
    """

    #: Tier label used by benchmarks and ``/stats`` (the exact scorer
    #: reports ``"exact"``).
    tier = "ann"

    def __init__(
        self,
        model: FactorModel,
        index: IvfIndex,
        exclude: Optional[
            Union[SparseRatingMatrix, Tuple[np.ndarray, np.ndarray]]
        ] = None,
        nprobe: int = DEFAULT_NPROBE,
        chunk_items: Union[int, str] = DEFAULT_CHUNK_ITEMS,
        pq_refine: int = DEFAULT_PQ_REFINE,
        use_pq: bool = True,
    ) -> None:
        if nprobe <= 0:
            raise InvalidMatrixError(f"nprobe must be positive, got {nprobe}")
        chunk_items = resolve_serving_chunk_items(chunk_items, DEFAULT_CHUNK_ITEMS)
        if chunk_items <= 0:
            raise InvalidMatrixError(
                f"chunk_items must be positive, got {chunk_items}"
            )
        if pq_refine <= 0:
            raise InvalidMatrixError(
                f"pq_refine must be positive, got {pq_refine}"
            )
        m, n = model.shape
        if index.meta.n_items != n or index.meta.dim != model.latent_factors:
            raise InvalidMatrixError(
                f"index shape ({index.meta.n_items} items, dim "
                f"{index.meta.dim}) does not match the model "
                f"({n} items, k={model.latent_factors})"
            )
        self.model = model
        self.index = index
        self.nprobe = min(int(nprobe), index.nlist)
        self.chunk_items = int(chunk_items)
        self.pq_refine = int(pq_refine)
        self._pq = bool(use_pq) and index.meta.pq_m > 0
        # Item-major (n, d) rows for contiguous candidate gathers; on
        # models following the layout contract this is a no-copy view.
        self._items = model.q.T
        self._indptr: Optional[np.ndarray] = None
        self._seen: Optional[np.ndarray] = None
        if exclude is not None:
            if isinstance(exclude, SparseRatingMatrix):
                if exclude.shape != model.shape:
                    raise InvalidMatrixError(
                        f"exclusion matrix shape {exclude.shape} does not "
                        f"match the model shape {model.shape}"
                    )
                self._indptr, self._seen = exclude.csr_rows()
            else:
                self._indptr, self._seen = exclude
                if len(self._indptr) != m + 1:
                    raise InvalidMatrixError(
                        f"CSR indptr length {len(self._indptr)} does not "
                        f"match the model's {m} users"
                    )

    @property
    def n_items(self) -> int:
        """Catalogue size ``n``."""
        return self.model.shape[1]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _mask_tile(
        self, scores: np.ndarray, users: np.ndarray, item_ids: np.ndarray
    ) -> None:
        """Mask already-rated items inside one ``(U, L)`` candidate tile.

        ``item_ids`` is one inverted list's slice — ascending, like the
        CSR rows — so each user's seen-items-in-tile set is a sorted
        intersection via ``searchsorted``.
        """
        indptr, seen = self._indptr, self._seen
        for i, user in enumerate(users):
            row = seen[indptr[user] : indptr[user + 1]]
            if row.size == 0:
                continue
            pos = np.searchsorted(row, item_ids)
            hit = (pos < row.size) & (row[np.minimum(pos, row.size - 1)] == item_ids)
            if hit.any():
                scores[i, hit] = _MASKED_SCORE

    def _probe(self, p_batch: np.ndarray) -> np.ndarray:
        """Top-``nprobe`` list ids per user (affinity desc, list id asc).

        Centroids live in the MIPS->L2 augmented space (see the index
        module docstring); a query augments as ``[p, 0]``, so nearest-
        augmented-centroid order is exactly descending
        ``p . c[:d] - |c|^2 / 2``.
        """
        d = self.index.meta.dim
        centroids = self.index.centroids
        bias = 0.5 * np.einsum("cd,cd->c", centroids, centroids)
        affinity = p_batch @ centroids[:, :d].T - bias
        list_ids = np.arange(self.index.nlist, dtype=np.int64)
        order = np.lexsort(
            (np.broadcast_to(list_ids, affinity.shape), -affinity), axis=1
        )
        return order[:, : self.nprobe]

    def _pad_to(self, ids: np.ndarray, vals: np.ndarray, k: int):
        """Right-pad a ``(U, j)`` candidate set to ``(U, k)`` with sentinels."""
        short = k - ids.shape[1]
        if short <= 0:
            return ids, vals
        return (
            np.pad(ids, ((0, 0), (0, short)), constant_values=PAD_ITEM),
            np.pad(vals, ((0, 0), (0, short)), constant_values=-np.inf),
        )

    def _merge_rows(
        self,
        best_ids: np.ndarray,
        best_vals: np.ndarray,
        rows: np.ndarray,
        ids: np.ndarray,
        vals: np.ndarray,
        k: int,
    ) -> None:
        """Merge one tile's per-row top-``k`` into the running best rows.

        Top-k-of-union is associative, so merging list by list yields
        the same result as ranking the full candidate union at once —
        which is what makes slates independent of list visit order and
        batch composition.
        """
        ids, vals = self._pad_to(ids, vals, k)
        merged_ids, merged_vals = _merge_top_k(
            best_ids[rows], best_vals[rows], ids, vals, k
        )
        best_ids[rows] = merged_ids
        best_vals[rows] = merged_vals

    def _score_lists_exact(
        self,
        p_batch: np.ndarray,
        users: np.ndarray,
        groups,
        best_ids: np.ndarray,
        best_vals: np.ndarray,
        k: int,
    ) -> None:
        """Exact inner products of every (user-subset, probed-list) tile."""
        for list_id, rows in groups:
            item_ids = self.index.list_ids(list_id)
            if item_ids.size == 0:
                continue
            p_sub = p_batch[rows]
            for start in range(0, item_ids.size, self.chunk_items):
                chunk = item_ids[start : start + self.chunk_items]
                scores = p_sub @ self._items[chunk].T
                if self._indptr is not None:
                    self._mask_tile(scores, users[rows], chunk)
                t_ids, t_vals = _top_k_rows(scores, chunk, k)
                self._merge_rows(best_ids, best_vals, rows, t_ids, t_vals, k)

    def _score_lists_pq(
        self,
        p_batch: np.ndarray,
        users: np.ndarray,
        groups,
        k: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """PQ first pass: shortlist ``pq_refine * k`` candidates per user.

        Approximate scores come from per-user lookup tables — one
        ``p_sub . codeword`` table per subspace — so a probed list costs
        ``pq_m`` one-byte gathers per item instead of a ``dim``-wide
        float64 GEMM column.  The shortlist keeps ids only; the caller
        re-ranks them exactly.
        """
        meta = self.index.meta
        b = p_batch.shape[0]
        shortlist = max(self.pq_refine * k, k)
        # Lookup tables: (B, pq_m, 256) inner products per subspace.
        p_sub = p_batch.reshape(b, meta.pq_m, meta.dsub)
        luts = np.einsum("bmd,mkd->bmk", p_sub, self.index.codebooks)
        best_ids = np.full((b, shortlist), PAD_ITEM, dtype=np.int64)
        best_vals = np.full((b, shortlist), -np.inf, dtype=np.float64)
        for list_id, rows in groups:
            item_ids = self.index.list_ids(list_id)
            if item_ids.size == 0:
                continue
            codes = self.index.list_codes(list_id)
            luts_rows = luts[rows]
            for start in range(0, item_ids.size, self.chunk_items):
                chunk = item_ids[start : start + self.chunk_items]
                chunk_codes = codes[start : start + self.chunk_items]
                approx = np.zeros((rows.size, chunk.size), dtype=np.float64)
                for sub in range(meta.pq_m):
                    approx += luts_rows[:, sub, :][:, chunk_codes[:, sub]]
                if self._indptr is not None:
                    self._mask_tile(approx, users[rows], chunk)
                t_ids, t_vals = _top_k_rows(approx, chunk, shortlist)
                self._merge_rows(
                    best_ids, best_vals, rows, t_ids, t_vals, shortlist
                )
        return best_ids, best_vals

    def _rerank_exact(
        self, p_batch: np.ndarray, cand_ids: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact re-rank of per-user shortlists (PAD-aware gather)."""
        gather = np.maximum(cand_ids, 0)  # PAD -> item 0, masked below
        vectors = self._items[gather]  # (B, S, d)
        scores = np.einsum("bd,bsd->bs", p_batch, vectors)
        scores[cand_ids == PAD_ITEM] = -np.inf
        safe_ids = np.where(cand_ids == PAD_ITEM, np.int64(2**62), cand_ids)
        order = np.lexsort((safe_ids, -scores), axis=1)[:, :k]
        return (
            np.take_along_axis(cand_ids, order, axis=1),
            np.take_along_axis(scores, order, axis=1),
        )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def top_k(
        self, users: np.ndarray, k: int = 10
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate top-``k`` for a batch of users.

        Same contract as :meth:`repro.serve.Scorer.top_k`: output shape
        ``(B, min(k, n))``, rows ordered (score desc, id asc), padding
        slots hold (:data:`PAD_ITEM`, ``-inf``).  Every reported score
        is the exact ``p_u . q_v`` inner product.
        """
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        if users.ndim != 1:
            raise InvalidMatrixError("users must be a 1-D array of ids")
        m, n = self.model.shape
        if users.size and (users.min() < 0 or users.max() >= m):
            raise InvalidMatrixError(
                f"user indices must lie in [0, {m}), got range "
                f"[{users.min()}, {users.max()}]"
            )
        if k <= 0:
            raise InvalidMatrixError(f"k must be positive, got {k}")
        k_eff = min(k, n)
        if users.size == 0:
            return (
                np.empty((0, k_eff), dtype=np.int64),
                np.empty((0, k_eff), dtype=np.float64),
            )

        p_batch = np.ascontiguousarray(self.model.p[users])
        probes = self._probe(p_batch)

        # Regroup (user, probed list) pairs by list: each probed list is
        # visited once per batch, scored for exactly the users probing it.
        flat_lists = probes.ravel()
        flat_rows = np.repeat(
            np.arange(users.size, dtype=np.int64), self.nprobe
        )
        order = np.lexsort((flat_rows, flat_lists))
        sorted_lists = flat_lists[order]
        sorted_rows = flat_rows[order]
        bounds = np.flatnonzero(np.diff(sorted_lists)) + 1
        groups = [
            (int(sorted_lists[start]), sorted_rows[start:stop])
            for start, stop in zip(
                np.concatenate(([0], bounds)),
                np.concatenate((bounds, [sorted_lists.size])),
            )
        ]

        if self._pq:
            cand_ids, _ = self._score_lists_pq(p_batch, users, groups, k_eff)
            best_ids, best_vals = self._rerank_exact(p_batch, cand_ids, k_eff)
        else:
            best_ids = np.full((users.size, k_eff), PAD_ITEM, dtype=np.int64)
            best_vals = np.full((users.size, k_eff), -np.inf, dtype=np.float64)
            self._score_lists_exact(
                p_batch, users, groups, best_ids, best_vals, k_eff
            )
        # Masked or never-filled slots must report the padding sentinel,
        # exactly like the exact scorer.
        padding = np.isneginf(best_vals)
        if padding.any():
            best_ids = best_ids.copy()
            best_ids[padding] = PAD_ITEM
        return best_ids, best_vals

    def top_k_single(self, user: int, k: int = 10) -> np.ndarray:
        """Item ids of one user's approximate top-``k``."""
        ids, _ = self.top_k(np.asarray([user]), k)
        return ids[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m, n = self.model.shape
        masked = self._indptr is not None
        pq = f", pq_refine={self.pq_refine}" if self._pq else ""
        return (
            f"AnnScorer(m={m}, n={n}, nlist={self.index.nlist}, "
            f"nprobe={self.nprobe}{pq}, "
            f"exclude={'csr' if masked else 'none'})"
        )
