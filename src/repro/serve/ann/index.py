"""The IVF/PQ index over item factors, packable into a shared segment.

An :class:`IvfIndex` partitions the item catalogue with a seeded k-means
coarse quantizer (:mod:`repro.serve.ann.kmeans`) into ``nlist`` inverted
lists.  A query probes the ``nprobe`` lists whose centroids score
highest against the user vector and re-ranks only those lists' items
exactly — the serving cost becomes ``~nprobe/nlist`` of the exact
scorer's, independent of how the catalogue grows.

Top-K by **inner product** is not nearest-neighbour by euclidean
distance — an item with a huge norm can win queries whose direction it
only loosely matches — so clustering raw item vectors euclidean-style
and probing by ``q . c`` loses exactly the high-norm winners (measured:
recall@10 ≈ 0.35 at ``nprobe=8/64`` on the benchmark factors).  The
index therefore applies the standard MIPS→L2 reduction (Bachrach et
al., RecSys'14): items are clustered in an augmented space ::

    x  ->  [x, sqrt(max_norm² - |x|²)]        (all rows have norm M)

where inner-product ranking *is* euclidean ranking, and queries probe
by the equivalent affinity ``q . c[:d] - |c|²/2`` (a query augments as
``[q, 0]``).  Same measurement with the reduction: recall@10 ≈ 0.99.
Only the ``(nlist, d+1)`` centroids live in augmented space; inverted
lists hold plain item ids and PQ codes quantize raw item vectors.

An optional **product quantization** refinement stores every item as
``pq_m`` one-byte codebook indices (one per factor subspace), an 8x
compression of the candidate first pass: probed lists are then scored
from per-query lookup tables (asymmetric distance computation) and only
a short per-user list survives to the exact re-rank.

Everything the query path needs is four (six with PQ) flat arrays, so
the index serializes as one contiguous byte range::

    centroids  (nlist, d + 1)    float64   augmented space (see above)
    offsets    (nlist + 1,)      int64     CSR bounds into ids/codes
    ids        (n,)              int64     item ids, ascending per list
    codebooks  (pq_m, 256, dsub) float64   [PQ only]
    codes      (n, pq_m)         uint8     [PQ only, aligned with ids]

:meth:`IvfIndex.pack_into` writes that layout at a byte offset of a
:class:`~repro.shm.SharedSegment`; :meth:`IvfIndex.attach` rebuilds the
index as zero-copy (optionally read-only) views over it, which is how
:class:`~repro.serve.ModelStore` publishes a model *and* its index in
one segment and how N reader processes share one physical index.

The build is deterministic: same factors + same parameters + same seed
produce bitwise-identical arrays (pinned by the test suite, including
across a publish/attach process boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ...exceptions import InvalidMatrixError
from ...sgd.model import FactorModel
from .kmeans import kmeans

#: Default number of inverted lists; at the paper's Netflix catalogue
#: (17 770 items) this gives ~278 items per list.
DEFAULT_NLIST = 64

#: Default number of lists probed per query (see AnnScorer).
DEFAULT_NPROBE = 8

#: Sub-quantizer alphabet size: one uint8 code per subspace.
PQ_KSUB = 256

#: k-means refinement sweeps for both quantizer levels.
DEFAULT_TRAIN_ITERATIONS = 10


def _pad8(nbytes: int) -> int:
    """Round a byte count up to 8-byte alignment (view-offset safety)."""
    return (nbytes + 7) & ~7


@dataclass(frozen=True)
class AnnIndexMeta:
    """Picklable descriptor of a packed index (rides the ModelHandle).

    Carries the shape of every packed array plus the build parameters,
    so a reader process can map the index zero-copy and tests can assert
    a rebuilt index matches the published one.
    """

    nlist: int
    n_items: int
    dim: int
    seed: int
    train_iterations: int = DEFAULT_TRAIN_ITERATIONS
    pq_m: int = 0

    def __post_init__(self) -> None:
        if self.nlist <= 0:
            raise InvalidMatrixError(f"nlist must be positive, got {self.nlist}")
        if self.n_items <= 0 or self.dim <= 0:
            raise InvalidMatrixError(
                f"index needs positive items/dim, got "
                f"({self.n_items}, {self.dim})"
            )
        if self.pq_m < 0:
            raise InvalidMatrixError(f"pq_m must be >= 0, got {self.pq_m}")
        if self.pq_m and self.dim % self.pq_m:
            raise InvalidMatrixError(
                f"pq_m={self.pq_m} must divide the factor dimension {self.dim}"
            )

    # ------------------------------------------------------------------ #
    # Packed layout (byte offsets relative to the index base offset)
    # ------------------------------------------------------------------ #
    @property
    def dsub(self) -> int:
        """Subspace width of the product quantizer (0 without PQ)."""
        return self.dim // self.pq_m if self.pq_m else 0

    @property
    def centroids_nbytes(self) -> int:
        # Centroids carry the MIPS->L2 augmentation coordinate.
        return self.nlist * (self.dim + 1) * 8

    @property
    def offsets_nbytes(self) -> int:
        return (self.nlist + 1) * 8

    @property
    def ids_nbytes(self) -> int:
        return self.n_items * 8

    @property
    def codebooks_nbytes(self) -> int:
        return self.pq_m * PQ_KSUB * self.dsub * 8 if self.pq_m else 0

    @property
    def codes_nbytes(self) -> int:
        return _pad8(self.n_items * self.pq_m) if self.pq_m else 0

    @property
    def nbytes(self) -> int:
        """Total packed size (the ModelHandle adds this to the payload)."""
        return (
            self.centroids_nbytes
            + self.offsets_nbytes
            + self.ids_nbytes
            + self.codebooks_nbytes
            + self.codes_nbytes
        )

    def as_dict(self) -> dict:
        return {
            "nlist": self.nlist,
            "n_items": self.n_items,
            "dim": self.dim,
            "seed": self.seed,
            "train_iterations": self.train_iterations,
            "pq_m": self.pq_m,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "AnnIndexMeta":
        return cls(
            nlist=int(raw["nlist"]),
            n_items=int(raw["n_items"]),
            dim=int(raw["dim"]),
            seed=int(raw["seed"]),
            train_iterations=int(raw.get("train_iterations", DEFAULT_TRAIN_ITERATIONS)),
            pq_m=int(raw.get("pq_m", 0)),
        )


class IvfIndex:
    """Inverted-file index over item factor vectors (+ optional PQ).

    Build with :meth:`build`, or map a published copy with
    :meth:`attach`.  The arrays are adopted as-is (attached indexes hold
    read-only shared views); nothing here mutates them after
    construction.
    """

    def __init__(
        self,
        meta: AnnIndexMeta,
        centroids: np.ndarray,
        offsets: np.ndarray,
        ids: np.ndarray,
        codebooks: Optional[np.ndarray] = None,
        codes: Optional[np.ndarray] = None,
    ) -> None:
        self.meta = meta
        self.centroids = centroids
        self.offsets = offsets
        self.ids = ids
        self.codebooks = codebooks
        self.codes = codes
        if (codebooks is None) != (meta.pq_m == 0) or (codes is None) != (
            meta.pq_m == 0
        ):
            raise InvalidMatrixError(
                "PQ arrays must be present exactly when meta.pq_m > 0"
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        model: Union[FactorModel, np.ndarray],
        nlist: int = DEFAULT_NLIST,
        seed: int = 0,
        pq_m: int = 0,
        train_iterations: int = DEFAULT_TRAIN_ITERATIONS,
    ) -> "IvfIndex":
        """Train the coarse (and PQ) quantizers over the item factors.

        ``model`` is a :class:`FactorModel` (its ``Q`` is indexed) or a
        raw ``(k, n)`` item factor matrix.  Deterministic for a fixed
        ``(factors, nlist, pq_m, train_iterations, seed)``.
        """
        q = model.q if isinstance(model, FactorModel) else np.asarray(model)
        if q.ndim != 2:
            raise InvalidMatrixError("item factors must be a (k, n) matrix")
        # Item vectors as contiguous (n, d) rows — the same item-major
        # layout FactorModel stores, so this is usually a no-copy view.
        items = np.ascontiguousarray(q.T, dtype=np.float64)
        n, dim = items.shape
        meta = AnnIndexMeta(
            nlist=int(nlist),
            n_items=n,
            dim=dim,
            seed=int(seed),
            train_iterations=int(train_iterations),
            pq_m=int(pq_m),
        )
        # MIPS->L2 reduction: append sqrt(M^2 - |x|^2) so every item has
        # norm M and inner-product ranking becomes euclidean ranking;
        # the coarse quantizer is trained in this augmented space.
        norms_sq = np.einsum("nd,nd->n", items, items)
        augment = np.sqrt(np.maximum(norms_sq.max() - norms_sq, 0.0))
        augmented = np.concatenate([items, augment[:, None]], axis=1)
        centroids, assignments = kmeans(
            augmented,
            meta.nlist,
            seed=meta.seed,
            iterations=meta.train_iterations,
        )
        # CSR inverted lists: stable sort by (list, id) keeps ids
        # ascending inside each list — part of the determinism contract.
        order = np.lexsort((np.arange(n, dtype=np.int64), assignments))
        ids = order.astype(np.int64)
        counts = np.bincount(assignments, minlength=meta.nlist)
        offsets = np.zeros(meta.nlist + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        codebooks = codes = None
        if meta.pq_m:
            codebooks = np.empty(
                (meta.pq_m, PQ_KSUB, meta.dsub), dtype=np.float64
            )
            codes = np.empty((n, meta.pq_m), dtype=np.uint8)
            ksub = min(PQ_KSUB, n)
            for sub in range(meta.pq_m):
                block = items[:, sub * meta.dsub : (sub + 1) * meta.dsub]
                # Independent per-subspace seed stream, still derived
                # from the single index seed.
                sub_centroids, sub_codes = kmeans(
                    block,
                    ksub,
                    seed=meta.seed + 1 + sub,
                    iterations=meta.train_iterations,
                )
                codebooks[sub, :ksub] = sub_centroids
                if ksub < PQ_KSUB:  # tiny catalogues: pad dead codewords
                    codebooks[sub, ksub:] = sub_centroids[0]
                codes[:, sub] = sub_codes.astype(np.uint8)
            # Codes are stored in *list order* so a probed list's codes
            # are one contiguous slice, exactly like its ids.
            codes = codes[ids]
        return cls(meta, centroids, offsets, ids, codebooks, codes)

    # ------------------------------------------------------------------ #
    # Shared-memory packing
    # ------------------------------------------------------------------ #
    def pack_into(self, segment, offset: int) -> None:
        """Write the packed layout at ``offset`` of a shared segment."""
        meta = self.meta
        views = _index_views(segment, offset, meta, readonly=False)
        views.centroids[...] = self.centroids
        views.offsets[...] = self.offsets
        views.ids[...] = self.ids
        if meta.pq_m:
            views.codebooks[...] = self.codebooks
            views.codes[...] = self.codes

    @classmethod
    def attach(
        cls, segment, offset: int, meta: AnnIndexMeta, readonly: bool = True
    ) -> "IvfIndex":
        """Zero-copy index over a packed layout (reader side)."""
        views = _index_views(segment, offset, meta, readonly=readonly)
        return cls(
            meta,
            views.centroids,
            views.offsets,
            views.ids,
            views.codebooks,
            views.codes,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def nlist(self) -> int:
        return self.meta.nlist

    def list_ids(self, list_id: int) -> np.ndarray:
        """Item ids of one inverted list (ascending)."""
        return self.ids[self.offsets[list_id] : self.offsets[list_id + 1]]

    def list_codes(self, list_id: int) -> Optional[np.ndarray]:
        """PQ codes of one inverted list, aligned with :meth:`list_ids`."""
        if self.codes is None:
            return None
        return self.codes[self.offsets[list_id] : self.offsets[list_id + 1]]

    def same_arrays(self, other: "IvfIndex") -> bool:
        """Bitwise equality of every packed array (determinism tests)."""
        if self.meta != other.meta:
            return False
        pairs = [
            (self.centroids, other.centroids),
            (self.offsets, other.offsets),
            (self.ids, other.ids),
        ]
        if self.meta.pq_m:
            pairs += [
                (self.codebooks, other.codebooks),
                (self.codes, other.codes),
            ]
        return all(np.array_equal(a, b) for a, b in pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        meta = self.meta
        pq = f", pq_m={meta.pq_m}" if meta.pq_m else ""
        return (
            f"IvfIndex(nlist={meta.nlist}, items={meta.n_items}, "
            f"dim={meta.dim}, seed={meta.seed}{pq})"
        )


@dataclass
class _IndexViews:
    centroids: np.ndarray
    offsets: np.ndarray
    ids: np.ndarray
    codebooks: Optional[np.ndarray]
    codes: Optional[np.ndarray]


def _index_views(
    segment, offset: int, meta: AnnIndexMeta, readonly: bool
) -> _IndexViews:
    """Map the packed layout as numpy views (shared, no copies)."""
    cursor = offset
    centroids = segment.ndarray(
        (meta.nlist, meta.dim + 1),
        np.float64,
        offset=cursor,
        readonly=readonly,
    )
    cursor += meta.centroids_nbytes
    offsets = segment.ndarray(
        (meta.nlist + 1,), np.int64, offset=cursor, readonly=readonly
    )
    cursor += meta.offsets_nbytes
    ids = segment.ndarray(
        (meta.n_items,), np.int64, offset=cursor, readonly=readonly
    )
    cursor += meta.ids_nbytes
    codebooks = codes = None
    if meta.pq_m:
        codebooks = segment.ndarray(
            (meta.pq_m, PQ_KSUB, meta.dsub),
            np.float64,
            offset=cursor,
            readonly=readonly,
        )
        cursor += meta.codebooks_nbytes
        codes = segment.ndarray(
            (meta.n_items, meta.pq_m),
            np.uint8,
            offset=cursor,
            readonly=readonly,
        )
    return _IndexViews(centroids, offsets, ids, codebooks, codes)
