"""Approximate top-K retrieval: IVF/PQ index tier behind the exact scorer.

See DESIGN.md ("Approximate retrieval memory model") for the segment
layout and the determinism argument; README ("Approximate top-K") for
the quickstart and the measured users/s-vs-recall frontier.
"""

from .index import (
    DEFAULT_NLIST,
    DEFAULT_NPROBE,
    DEFAULT_TRAIN_ITERATIONS,
    PQ_KSUB,
    AnnIndexMeta,
    IvfIndex,
)
from .kmeans import kmeans
from .scorer import DEFAULT_PQ_REFINE, AnnScorer

__all__ = [
    "AnnIndexMeta",
    "AnnScorer",
    "IvfIndex",
    "kmeans",
    "DEFAULT_NLIST",
    "DEFAULT_NPROBE",
    "DEFAULT_PQ_REFINE",
    "DEFAULT_TRAIN_ITERATIONS",
    "PQ_KSUB",
]
