"""Deterministic, seeded k-means for the ANN coarse and product quantizers.

The index build must be a *pure function* of (factors, parameters, seed):
two builds on the same machine — or on different machines with the same
BLAS — produce bitwise-identical centroids, list assignments and PQ
codes, which is what lets the determinism tests compare an index built
in-process against one attached from a reader process.  Everything here
is plain numpy with a single ``default_rng(seed)``:

* initialisation is k-means++ style (greedy D² sampling) driven by that
  one generator;
* assignment breaks distance ties by **lowest centroid id** (``argmin``
  returns the first minimum);
* an emptied cluster is re-seeded deterministically with the point
  currently farthest from its assigned centroid (lowest index among
  ties), the standard repair that keeps ``nlist`` partitions meaningful
  on skewed data.

Distances are computed chunked over the point axis so the ``(n, c)``
distance tile stays cache-resident at catalogue scale.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...exceptions import InvalidMatrixError

#: Points scored per distance tile; 4096 x 256 centroids x 8 bytes = 8 MiB
#: worst case, well within L3 for the configurations the index targets.
_POINT_CHUNK = 4096


def _pairwise_sq_dists(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """``(n, c)`` squared euclidean distances, one GEMM per tile."""
    # |p - c|^2 = |p|^2 - 2 p.c + |c|^2; the |p|^2 term is constant per
    # row and irrelevant for argmin, but keeping it makes the values
    # meaningful for the empty-cluster repair below.
    p_sq = np.einsum("nd,nd->n", points, points)
    c_sq = np.einsum("cd,cd->c", centroids, centroids)
    out = np.empty((points.shape[0], centroids.shape[0]), dtype=np.float64)
    for start in range(0, points.shape[0], _POINT_CHUNK):
        stop = min(start + _POINT_CHUNK, points.shape[0])
        tile = points[start:stop] @ centroids.T
        out[start:stop] = p_sq[start:stop, None] - 2.0 * tile + c_sq[None, :]
    return out


def _init_plus_plus(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: greedy D²-weighted draws from one generator."""
    n = points.shape[0]
    centroids = np.empty((n_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n))
    centroids[0] = points[first]
    # Running minimum squared distance to any chosen centroid.
    d_sq = np.einsum("nd,nd->n", points - centroids[0], points - centroids[0])
    for j in range(1, n_clusters):
        total = d_sq.sum()
        if total <= 0.0:
            # Every remaining point coincides with a centroid (duplicate
            # rows); fall back to uniform draws, still seeded.
            choice = int(rng.integers(0, n))
        else:
            choice = int(rng.choice(n, p=d_sq / total))
        centroids[j] = points[choice]
        step = np.einsum(
            "nd,nd->n", points - centroids[j], points - centroids[j]
        )
        np.minimum(d_sq, step, out=d_sq)
    return centroids


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    seed: int = 0,
    iterations: int = 10,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm; returns ``(centroids, assignments)``.

    ``points`` is ``(n, d)`` float64; ``assignments`` maps each point to
    its nearest centroid id (ties: lowest id).  Deterministic for a
    given ``(points, n_clusters, seed, iterations)``.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidMatrixError("kmeans needs a non-empty (n, d) point array")
    n = points.shape[0]
    if n_clusters <= 0:
        raise InvalidMatrixError(
            f"n_clusters must be positive, got {n_clusters}"
        )
    if n_clusters > n:
        raise InvalidMatrixError(
            f"cannot build {n_clusters} clusters from {n} points"
        )
    rng = np.random.default_rng(seed)
    centroids = _init_plus_plus(points, n_clusters, rng)
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max(1, iterations)):
        dists = _pairwise_sq_dists(points, centroids)
        assignments = np.argmin(dists, axis=1).astype(np.int64)
        # Mean update; np.add.at accumulates in index order, which is
        # deterministic for a fixed assignment vector.
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, points)
        counts = np.bincount(assignments, minlength=n_clusters)
        empty = np.flatnonzero(counts == 0)
        if empty.size:
            # Deterministic repair: each emptied cluster steals the
            # point farthest from its current centroid (lowest index
            # among exact ties), then means are recomputed.
            own = dists[np.arange(n), assignments]
            for cluster in empty:
                victim = int(np.argmax(own))
                own[victim] = -np.inf  # a point can be stolen only once
                old = assignments[victim]
                sums[old] -= points[victim]
                counts[old] -= 1
                sums[cluster] = points[victim]
                counts[cluster] = 1
                assignments[victim] = cluster
        centroids = sums / counts[:, None]
    # Final assignment against the last centroid update, so the returned
    # pair is self-consistent.
    assignments = np.argmin(
        _pairwise_sq_dists(points, centroids), axis=1
    ).astype(np.int64)
    return centroids, assignments
