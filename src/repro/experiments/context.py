"""Shared configuration of the experiment harness.

The paper's full evaluation sweeps four datasets, five GPU-parallel-worker
settings, seven CPU-thread settings and several dozen training runs.  The
:class:`ExperimentContext` carries the knobs that let the same harness run
either a quick benchmark pass (the default — a few minutes end to end) or
the full sweep (``ExperimentContext.full()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..config import HardwareConfig
from ..datasets import dataset_names
from ..hardware import PlatformPreset, paper_machine_preset

#: Scale at which the simulated machine is run to match the ~1/1000-sized
#: synthetic datasets (see DESIGN.md and repro.hardware.presets).
DEFAULT_MACHINE_SCALE = 1e-3


def default_preset() -> PlatformPreset:
    """The paper machine scaled to the synthetic dataset sizes."""
    return paper_machine_preset().scaled(DEFAULT_MACHINE_SCALE)


@dataclass
class ExperimentContext:
    """Workload knobs shared by all experiment entry points.

    Attributes
    ----------
    preset:
        Simulated machine constants.
    datasets:
        Dataset names to evaluate (Table I order by default).
    cpu_threads:
        Default CPU thread count ``nc`` (the paper uses 16).
    gpu_count:
        Number of GPUs ``ng``.
    gpu_parallel_workers:
        Default GPU parallel workers (the paper uses 128).
    gpu_worker_sweep:
        Values swept by the Figure 10 experiment.
    cpu_thread_sweep:
        Values swept by the Figure 11 experiment.
    iterations:
        Iteration budget of fixed-length runs (Figures 12/13, Tables II/III
        use 20 in the paper).
    max_iterations:
        Iteration cap of time-to-target runs (Figures 10/11).
    seed:
        Base random seed.
    """

    preset: PlatformPreset = field(default_factory=default_preset)
    datasets: List[str] = field(default_factory=dataset_names)
    cpu_threads: int = 16
    gpu_count: int = 1
    gpu_parallel_workers: int = 128
    gpu_worker_sweep: Sequence[int] = (32, 128, 512)
    cpu_thread_sweep: Sequence[int] = (4, 8, 16)
    iterations: int = 12
    max_iterations: int = 35
    seed: int = 0

    @classmethod
    def quick(cls, datasets: Optional[List[str]] = None) -> "ExperimentContext":
        """A reduced context for smoke tests: two datasets, few iterations."""
        return cls(
            datasets=datasets or ["movielens", "netflix"],
            gpu_worker_sweep=(32, 128),
            cpu_thread_sweep=(4, 16),
            iterations=6,
            max_iterations=20,
        )

    @classmethod
    def full(cls) -> "ExperimentContext":
        """The paper's full sweep (32-512 workers, 4-16 threads, 20 iterations)."""
        return cls(
            gpu_worker_sweep=(32, 64, 128, 256, 512),
            cpu_thread_sweep=(4, 6, 8, 10, 12, 14, 16),
            iterations=20,
            max_iterations=40,
        )

    def hardware(
        self,
        cpu_threads: Optional[int] = None,
        gpu_parallel_workers: Optional[int] = None,
    ) -> HardwareConfig:
        """A hardware configuration with optional per-experiment overrides."""
        return HardwareConfig(
            cpu_threads=self.cpu_threads if cpu_threads is None else cpu_threads,
            gpu_count=self.gpu_count,
            gpu_parallel_workers=(
                self.gpu_parallel_workers
                if gpu_parallel_workers is None
                else gpu_parallel_workers
            ),
        )
