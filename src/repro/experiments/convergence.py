"""Training-quality experiments: Figures 12 and 13.

Both figures plot the test RMSE against (simulated) training time:

* Figure 12 compares CPU-Only, GPU-Only and HSGD* — all three converge
  to a similar loss and HSGD* gets there first;
* Figure 13 compares HSGD against HSGD* — the uniform division plus
  greedy assignment of HSGD updates some blocks far more often than
  others (Example 3), which shows up as a visibly worse RMSE-for-time
  curve, especially on the larger datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..metrics.reporting import format_table
from .context import ExperimentContext
from .runs import run_algorithm

#: Algorithms of Figure 12.
FIGURE12_ALGORITHMS = ("cpu_only", "gpu_only", "hsgd_star")

#: Algorithms of Figure 13.
FIGURE13_ALGORITHMS = ("hsgd", "hsgd_star")


@dataclass
class ConvergenceResult:
    """RMSE-over-time curves of several algorithms on one dataset."""

    dataset: str
    #: ``curves[algorithm]`` is a list of ``(simulated_time, test_rmse)``.
    curves: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def final_rmse(self, algorithm: str) -> float:
        """Test RMSE of an algorithm after its last iteration."""
        return self.curves[algorithm][-1][1]

    def time_to_rmse(self, algorithm: str, target: float) -> Optional[float]:
        """Earliest time the algorithm's curve crosses ``target``."""
        for time, rmse in self.curves[algorithm]:
            if rmse <= target:
                return time
        return None

    def render(self) -> str:
        """Plain-text listing of every curve."""
        sections = []
        for algorithm, curve in self.curves.items():
            table = format_table(
                ["time (s)", "test RMSE"], curve, "{:.5g}"
            )
            sections.append(f"[{self.dataset}] {algorithm}\n{table}")
        return "\n\n".join(sections)


def _collect_curves(
    context: ExperimentContext, algorithms
) -> List[ConvergenceResult]:
    results = []
    for dataset in context.datasets:
        outcome = ConvergenceResult(dataset=dataset)
        for algorithm in algorithms:
            run = run_algorithm(context, dataset, algorithm)
            outcome.curves[algorithm] = run.rmse_curve()
        results.append(outcome)
    return results


def figure12_rmse_curves(
    context: Optional[ExperimentContext] = None,
) -> List[ConvergenceResult]:
    """Figure 12: test RMSE over training time for CPU-Only / GPU-Only / HSGD*."""
    context = context or ExperimentContext()
    return _collect_curves(context, FIGURE12_ALGORITHMS)


def figure13_division_ablation(
    context: Optional[ExperimentContext] = None,
) -> List[ConvergenceResult]:
    """Figure 13: test RMSE over training time for HSGD vs HSGD*."""
    context = context or ExperimentContext()
    return _collect_curves(context, FIGURE13_ALGORITHMS)
