"""Running-time experiments: Figures 10 and 11.

Both figures report, per dataset, the (simulated) time each algorithm
needs to reach the dataset's predefined test-RMSE target while one
hardware dimension is swept:

* Figure 10 sweeps the number of GPU parallel workers (32-512) with the
  CPU thread count fixed at 16;
* Figure 11 sweeps the CPU thread count (4-16) with the GPU parallel
  workers fixed at 128.

CPU-Only does not depend on the GPU worker count and GPU-Only does not
depend on the CPU thread count, so those curves are computed once per
dataset and replicated across the sweep — the same shortcut the flat
lines in the paper's plots represent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..datasets import get_dataset
from ..metrics.reporting import format_table
from .context import ExperimentContext
from .runs import run_algorithm

#: Algorithms shown in Figures 10 and 11.
RUNTIME_ALGORITHMS = ("cpu_only", "gpu_only", "hsgd_star")


@dataclass
class RuntimeSweepResult:
    """Time-to-target results of one dataset across one hardware sweep."""

    dataset: str
    sweep_name: str
    sweep_values: List[int]
    target_rmse: float
    #: ``times[algorithm][i]`` is the simulated seconds to reach the target
    #: at ``sweep_values[i]`` (``None`` when the target was not reached).
    times: Dict[str, List[Optional[float]]] = field(default_factory=dict)

    def as_rows(self) -> List[tuple]:
        """Rows of ``(sweep value, time per algorithm...)`` for reporting."""
        rows = []
        for index, value in enumerate(self.sweep_values):
            row = [value]
            for algorithm in self.times:
                time = self.times[algorithm][index]
                row.append(float("nan") if time is None else time)
            rows.append(tuple(row))
        return rows

    def render(self) -> str:
        """Plain-text table mirroring one subplot of the figure."""
        headers = [self.sweep_name] + list(self.times.keys())
        return format_table(headers, self.as_rows(), "{:.4g}")

    def speedup_over(self, baseline: str, at_value: int) -> Optional[float]:
        """HSGD* speedup over a baseline at one sweep setting."""
        index = self.sweep_values.index(at_value)
        base = self.times.get(baseline, [None] * len(self.sweep_values))[index]
        ours = self.times.get("hsgd_star", [None] * len(self.sweep_values))[index]
        if base is None or ours is None or ours <= 0:
            return None
        return base / ours


def _time_to_target(context, dataset, algorithm, target, **overrides):
    result = run_algorithm(
        context, dataset, algorithm, target_rmse=target, **overrides
    )
    if not result.converged:
        return None
    return result.trace.target_reached_at


def figure10_vary_gpu_workers(
    context: Optional[ExperimentContext] = None,
) -> List[RuntimeSweepResult]:
    """Figure 10: time to the RMSE target as GPU parallel workers vary."""
    context = context or ExperimentContext()
    results = []
    for dataset in context.datasets:
        target = get_dataset(dataset).target_rmse
        sweep = list(context.gpu_worker_sweep)
        outcome = RuntimeSweepResult(
            dataset=dataset,
            sweep_name="gpu_workers",
            sweep_values=sweep,
            target_rmse=target,
        )
        cpu_time = _time_to_target(context, dataset, "cpu_only", target)
        outcome.times["cpu_only"] = [cpu_time] * len(sweep)
        for algorithm in ("gpu_only", "hsgd_star"):
            outcome.times[algorithm] = [
                _time_to_target(
                    context, dataset, algorithm, target, gpu_parallel_workers=value
                )
                for value in sweep
            ]
        results.append(outcome)
    return results


def figure11_vary_cpu_threads(
    context: Optional[ExperimentContext] = None,
) -> List[RuntimeSweepResult]:
    """Figure 11: time to the RMSE target as the CPU thread count varies."""
    context = context or ExperimentContext()
    results = []
    for dataset in context.datasets:
        target = get_dataset(dataset).target_rmse
        sweep = list(context.cpu_thread_sweep)
        outcome = RuntimeSweepResult(
            dataset=dataset,
            sweep_name="cpu_threads",
            sweep_values=sweep,
            target_rmse=target,
        )
        gpu_time = _time_to_target(context, dataset, "gpu_only", target)
        outcome.times["gpu_only"] = [gpu_time] * len(sweep)
        for algorithm in ("cpu_only", "hsgd_star"):
            outcome.times[algorithm] = [
                _time_to_target(
                    context, dataset, algorithm, target, cpu_threads=value
                )
                for value in sweep
            ]
        results.append(outcome)
    return results
