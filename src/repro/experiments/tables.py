"""Table experiments: Tables I, II and III of the paper.

* Table I lists the datasets and per-dataset hyper-parameters; the
  reproduction reports both the original statistics and the synthetic
  analogue actually trained on.
* Table II compares the Qilin cost model (HSGD*-Q) against the paper's
  cost model (HSGD*-M): the workload proportion each assigns to CPUs and
  GPUs, and the running time of a fixed number of iterations.  Neither
  variant uses dynamic scheduling, isolating the cost-model effect.
* Table III compares HSGD*-M against the full HSGD* (dynamic scheduling
  on), isolating the work-stealing effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..datasets import get_dataset, load_dataset
from ..metrics.reporting import format_table
from .context import ExperimentContext
from .runs import run_algorithm


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DatasetRow:
    """One column of Table I, for both the paper dataset and the analogue."""

    name: str
    paper_rows: int
    paper_cols: int
    paper_training: int
    paper_test: int
    synthetic_rows: int
    synthetic_cols: int
    synthetic_training: int
    synthetic_test: int
    latent_factors: int
    reg_p: float
    reg_q: float
    learning_rate: float


def table1_datasets(
    context: Optional[ExperimentContext] = None,
) -> List[DatasetRow]:
    """Table I: dataset statistics and parameter settings."""
    context = context or ExperimentContext()
    rows = []
    for name in context.datasets:
        spec = get_dataset(name)
        data = load_dataset(name, seed=context.seed)
        rows.append(
            DatasetRow(
                name=name,
                paper_rows=spec.paper.n_rows,
                paper_cols=spec.paper.n_cols,
                paper_training=spec.paper.n_training,
                paper_test=spec.paper.n_test,
                synthetic_rows=spec.synthetic.n_rows,
                synthetic_cols=spec.synthetic.n_cols,
                synthetic_training=data.train.nnz,
                synthetic_test=data.test.nnz,
                latent_factors=spec.paper.latent_factors,
                reg_p=spec.paper.reg_p,
                reg_q=spec.paper.reg_q,
                learning_rate=spec.paper.learning_rate,
            )
        )
    return rows


def render_table1(rows: List[DatasetRow]) -> str:
    """Plain-text rendering of Table I."""
    return format_table(
        [
            "dataset",
            "m (paper)",
            "n (paper)",
            "#train (paper)",
            "#test (paper)",
            "m (repro)",
            "n (repro)",
            "#train (repro)",
            "#test (repro)",
            "k",
            "lambda_P",
            "lambda_Q",
            "gamma",
        ],
        [
            (
                row.name,
                row.paper_rows,
                row.paper_cols,
                row.paper_training,
                row.paper_test,
                row.synthetic_rows,
                row.synthetic_cols,
                row.synthetic_training,
                row.synthetic_test,
                row.latent_factors,
                row.reg_p,
                row.reg_q,
                row.learning_rate,
            )
            for row in rows
        ],
        "{:g}",
    )


# --------------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------------- #
@dataclass
class CostModelComparison:
    """One dataset's Table II entry."""

    dataset: str
    #: Fraction of work assigned to CPUs / GPUs by each cost model (the
    #: planned split from the cost model, matching the paper's table).
    cpu_share: Dict[str, float] = field(default_factory=dict)
    gpu_share: Dict[str, float] = field(default_factory=dict)
    #: Simulated running time of the fixed-iteration run for each variant.
    running_time: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Plain-text rendering of this dataset's rows."""
        rows = []
        for variant in self.running_time:
            rows.append(
                (
                    variant,
                    100.0 * self.cpu_share.get(variant, float("nan")),
                    100.0 * self.gpu_share.get(variant, float("nan")),
                    self.running_time[variant],
                )
            )
        return format_table(
            [f"{self.dataset} variant", "C %", "G %", "time (s)"], rows, "{:.4g}"
        )


def table2_cost_models(
    context: Optional[ExperimentContext] = None,
    iterations: Optional[int] = None,
) -> List[CostModelComparison]:
    """Table II: Qilin vs the paper's cost model (no dynamic scheduling)."""
    context = context or ExperimentContext()
    results = []
    for dataset in context.datasets:
        comparison = CostModelComparison(dataset=dataset)
        for variant, algorithm in (("HSGD*-Q", "hsgd_star_q"), ("HSGD*-M", "hsgd_star_m")):
            run = run_algorithm(
                context, dataset, algorithm, iterations=iterations
            )
            alpha = run.alpha if run.alpha is not None else 0.0
            comparison.gpu_share[variant] = alpha
            comparison.cpu_share[variant] = 1.0 - alpha
            comparison.running_time[variant] = run.engine_time
        results.append(comparison)
    return results


# --------------------------------------------------------------------------- #
# Table III
# --------------------------------------------------------------------------- #
@dataclass
class DynamicSchedulingComparison:
    """One dataset's Table III entry."""

    dataset: str
    static_time: float
    dynamic_time: float
    stolen_tasks: int

    @property
    def improvement(self) -> float:
        """Relative improvement of dynamic scheduling over the static split."""
        if self.static_time <= 0:
            return 0.0
        return (self.static_time - self.dynamic_time) / self.static_time

    def render(self) -> str:
        """Plain-text rendering of this dataset's row."""
        return format_table(
            ["dataset", "HSGD*-M (s)", "HSGD* (s)", "improvement", "stolen tasks"],
            [
                (
                    self.dataset,
                    self.static_time,
                    self.dynamic_time,
                    f"{100 * self.improvement:.1f}%",
                    self.stolen_tasks,
                )
            ],
            "{:.4g}",
        )


def table3_dynamic_scheduling(
    context: Optional[ExperimentContext] = None,
    iterations: Optional[int] = None,
) -> List[DynamicSchedulingComparison]:
    """Table III: effectiveness of the dynamic (work-stealing) phase."""
    context = context or ExperimentContext()
    results = []
    for dataset in context.datasets:
        static_run = run_algorithm(
            context, dataset, "hsgd_star_m", iterations=iterations
        )
        dynamic_run = run_algorithm(
            context, dataset, "hsgd_star", iterations=iterations
        )
        results.append(
            DynamicSchedulingComparison(
                dataset=dataset,
                static_time=static_run.engine_time,
                dynamic_time=dynamic_run.engine_time,
                stolen_tasks=dynamic_run.trace.stolen_task_count(),
            )
        )
    return results
