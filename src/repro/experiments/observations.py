"""Observation 1/2 and Example 3 experiments.

These reproduce the motivating measurements of Section IV-B:

* **Observation 1** — GPU update throughput keeps improving as blocks get
  larger (small blocks cannot saturate the GPU);
* **Observation 2** — per-thread CPU throughput is insensitive to block
  size;
* **Example 3** — under HSGD's uniform division and greedy assignment, a
  much faster GPU ends up updating a few blocks far more often than the
  rest, which is measurable as a high dispersion of per-block update
  counts; HSGD*'s quota-driven scheduler keeps the counts nearly uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core import HeterogeneousTrainer
from ..core.algorithms import build_grid, build_scheduler, get_algorithm
from ..datasets import load_dataset
from ..metrics.imbalance import update_imbalance
from ..sim import SimulationEngine
from .context import ExperimentContext
from .throughput import figure3_block_throughput


@dataclass
class BlockSensitivity:
    """Summary statistics behind Observations 1 and 2."""

    gpu_speedup_large_over_small: float
    cpu_speedup_large_over_small: float

    @property
    def observation1_holds(self) -> bool:
        """GPU throughput grows substantially with block size."""
        return self.gpu_speedup_large_over_small > 1.5

    @property
    def observation2_holds(self) -> bool:
        """CPU throughput stays flat (within 10%) across block sizes."""
        return abs(self.cpu_speedup_large_over_small - 1.0) < 0.1


def observation_block_sensitivity(
    context: Optional[ExperimentContext] = None,
) -> BlockSensitivity:
    """Quantify Observations 1 and 2 from the Figure 3 sweep."""
    gpu_series, cpu_series = figure3_block_throughput()
    gpu_values = gpu_series.values()
    cpu_values = cpu_series.values()
    return BlockSensitivity(
        gpu_speedup_large_over_small=gpu_values[-1] / gpu_values[0],
        cpu_speedup_large_over_small=cpu_values[-1] / cpu_values[0],
    )


def example3_update_imbalance(
    context: Optional[ExperimentContext] = None,
    dataset: str = "yahoomusic",
    iterations: int = 5,
) -> Dict[str, Dict[str, float]]:
    """Example 3: per-block update-count imbalance of HSGD vs HSGD*.

    Returns the imbalance statistics (coefficient of variation, Gini
    coefficient, min/max) of the two schedulers' grids after a short
    training run; HSGD's statistics are markedly more dispersed.
    """
    context = context or ExperimentContext()
    data = load_dataset(dataset, seed=context.seed)
    training = data.spec.recommended_training(iterations=iterations, seed=context.seed)

    results: Dict[str, Dict[str, float]] = {}
    for algorithm in ("hsgd", "hsgd_star"):
        spec = get_algorithm(algorithm)
        trainer = HeterogeneousTrainer(
            algorithm=algorithm,
            hardware=context.hardware(),
            training=training,
            preset=context.preset,
            seed=context.seed,
        )
        alpha = None
        if spec.division == "nonuniform":
            split = trainer.workload_split(data.train)
            alpha = split.alpha if split is not None else 0.0
        grid = build_grid(spec, data.train, context.hardware(), alpha=alpha)
        scheduler = build_scheduler(spec, grid, context.hardware(), seed=context.seed)
        engine = SimulationEngine(
            scheduler=scheduler,
            platform=trainer.platform,
            train=data.train,
            training=training,
            test=data.test,
        )
        engine.run(iterations=iterations)
        results[algorithm] = update_imbalance(grid)
    return results
