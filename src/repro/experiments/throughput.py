"""Device-level throughput experiments (Figures 3, 6 and 7).

These experiments probe the simulated devices directly, exactly like the
micro-benchmarks the paper runs on its machine:

* Figure 3 — end-to-end update speed of a GPU and of a single CPU thread
  on blocks of growing size;
* Figure 6 — PCIe copy bandwidth in both directions over transfer sizes
  from 64 KB to 256 MB;
* Figure 7 — GPU kernel-only throughput over the same block-size sweep.

The probes use the *unscaled* paper-machine preset by default so the
x-axes line up with the paper's figures (hundreds of thousands to
millions of ratings, kilobytes to hundreds of megabytes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import HardwareConfig
from ..hardware import BlockWork, HeterogeneousPlatform, PlatformPreset, paper_machine_preset
from ..metrics.reporting import format_table

#: Block sizes (ratings) swept by the Figure 3 / Figure 7 experiments,
#: matching the 100 k - 2.5 M range of the paper's x-axes.
DEFAULT_BLOCK_SIZES = (
    100_000,
    250_000,
    500_000,
    750_000,
    1_000_000,
    1_500_000,
    2_000_000,
    2_500_000,
)

#: CPU block sizes of Figure 3(b) (the paper sweeps 100 k - 400 k).
DEFAULT_CPU_BLOCK_SIZES = (50_000, 100_000, 200_000, 300_000, 400_000)

#: Transfer sizes of Figure 6 (64 KB to 256 MB).
DEFAULT_TRANSFER_SIZES = tuple(64 * 1024 * (2 ** i) for i in range(13))


@dataclass(frozen=True)
class ThroughputPoint:
    """One point of a throughput curve."""

    size: int
    value: float


@dataclass
class ThroughputSeries:
    """A named throughput curve (one line of a figure)."""

    name: str
    unit: str
    points: List[ThroughputPoint]

    def as_rows(self) -> List[tuple]:
        """Rows of ``(size, value)`` for reporting."""
        return [(point.size, point.value) for point in self.points]

    def render(self) -> str:
        """Plain-text table of the series."""
        return format_table(["size", self.unit], self.as_rows(), "{:.2f}")

    def values(self) -> List[float]:
        """The y-values in sweep order."""
        return [point.value for point in self.points]


def _representative_work(block_size: int, latent_factors: int = 128) -> BlockWork:
    """Block geometry used for device probes.

    A typical MF block of ``s`` ratings spans row and column bands holding
    roughly ``sqrt(s) * 4`` users/items each on the paper's datasets; the
    exact numbers only set the (non-dominant) factor-transfer volume.
    """
    span = int(4 * block_size ** 0.5)
    return BlockWork(
        nnz=block_size,
        p_rows=span,
        q_cols=span,
        latent_factors=latent_factors,
    )


def _platform(preset: Optional[PlatformPreset], gpu_parallel_workers: int) -> HeterogeneousPlatform:
    return HeterogeneousPlatform.from_preset(
        HardwareConfig(
            cpu_threads=1, gpu_count=1, gpu_parallel_workers=gpu_parallel_workers
        ),
        preset or paper_machine_preset(),
    )


def figure3_block_throughput(
    preset: Optional[PlatformPreset] = None,
    gpu_block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    cpu_block_sizes: Sequence[int] = DEFAULT_CPU_BLOCK_SIZES,
    gpu_parallel_workers: int = 128,
) -> List[ThroughputSeries]:
    """Figure 3: update speed of the GPU (a) and one CPU thread (b) vs block size.

    Returns two series whose values are in million points per second, the
    paper's y-axis unit.
    """
    platform = _platform(preset, gpu_parallel_workers)
    gpu = platform.representative_gpu()
    cpu = platform.representative_cpu()

    gpu_series = ThroughputSeries(
        name="gpu-update-speed",
        unit="Mpts/s",
        points=[
            ThroughputPoint(size, gpu.update_speed(_representative_work(size)) / 1e6)
            for size in gpu_block_sizes
        ],
    )
    cpu_series = ThroughputSeries(
        name="cpu-thread-update-speed",
        unit="Mpts/s",
        points=[
            ThroughputPoint(size, cpu.update_speed(_representative_work(size)) / 1e6)
            for size in cpu_block_sizes
        ],
    )
    return [gpu_series, cpu_series]


def figure6_transfer_speed(
    preset: Optional[PlatformPreset] = None,
    transfer_sizes: Sequence[int] = DEFAULT_TRANSFER_SIZES,
) -> List[ThroughputSeries]:
    """Figure 6: PCIe copy bandwidth vs transfer size, both directions (GB/s)."""
    platform = _platform(preset, gpu_parallel_workers=128)
    link = platform.representative_gpu().pcie

    h2d = ThroughputSeries(
        name="host-to-device",
        unit="GB/s",
        points=[
            ThroughputPoint(size, link.host_to_device_bandwidth(size) / 1e9)
            for size in transfer_sizes
        ],
    )
    d2h = ThroughputSeries(
        name="device-to-host",
        unit="GB/s",
        points=[
            ThroughputPoint(size, link.device_to_host_bandwidth(size) / 1e9)
            for size in transfer_sizes
        ],
    )
    return [h2d, d2h]


def figure7_kernel_throughput(
    preset: Optional[PlatformPreset] = None,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    gpu_parallel_workers: int = 128,
) -> ThroughputSeries:
    """Figure 7: GPU kernel-only update throughput vs block size (Mpts/s)."""
    platform = _platform(preset, gpu_parallel_workers)
    gpu = platform.representative_gpu()
    points = []
    for size in block_sizes:
        work = _representative_work(size)
        points.append(ThroughputPoint(size, size / gpu.kernel_time(work) / 1e6))
    return ThroughputSeries(name="gpu-kernel-throughput", unit="Mpts/s", points=points)
