"""Ablations beyond the paper's own tables.

DESIGN.md calls out three design choices worth isolating:

* **alpha sensitivity** — how much does the running time degrade when the
  GPU workload share is forced away from the cost model's optimum?  This
  quantifies how much accuracy the cost model actually buys.
* **column rule** — Figure 9 uses ``nc + 2 ng + 1`` columns (so a GPU can
  always prefetch its next block and a spare column always exists); this
  ablation compares against a naive narrower/wider column count.
* **stream overlap** — Equation 9 models the GPU cost as the maximum of
  the transfer and kernel streams because CUDA streams overlap them; this
  ablation disables the overlap to show its contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .context import ExperimentContext
from .runs import run_algorithm


@dataclass
class AblationResult:
    """Running times of one ablation sweep on one dataset."""

    dataset: str
    parameter: str
    #: ``times[label]`` is the simulated running time for one setting.
    times: Dict[str, float] = field(default_factory=dict)

    def best_setting(self) -> str:
        """The setting with the smallest running time."""
        return min(self.times, key=self.times.get)


def ablation_alpha_sensitivity(
    context: Optional[ExperimentContext] = None,
    dataset: str = "yahoomusic",
    alphas: Sequence[float] = (0.1, 0.25, 0.4, 0.55, 0.7),
    iterations: Optional[int] = None,
) -> AblationResult:
    """Force the GPU share away from the cost-model optimum and measure cost.

    The run with ``alpha = None`` (the cost-model choice) is included
    under the label ``"cost-model"``.
    """
    context = context or ExperimentContext()
    result = AblationResult(dataset=dataset, parameter="alpha")
    model_run = run_algorithm(
        context, dataset, "hsgd_star_m", iterations=iterations
    )
    result.times["cost-model"] = model_run.engine_time
    for alpha in alphas:
        run = run_algorithm(
            context,
            dataset,
            "hsgd_star_m",
            iterations=iterations,
            alpha_override=alpha,
        )
        result.times[f"alpha={alpha:.2f}"] = run.engine_time
    return result


def ablation_column_rule(
    context: Optional[ExperimentContext] = None,
    dataset: str = "yahoomusic",
    column_scales: Sequence[float] = (0.6, 1.0, 1.5, 2.5),
    iterations: Optional[int] = None,
) -> AblationResult:
    """Vary the nonuniform division's column count around ``nc + 2 ng + 1``."""
    context = context or ExperimentContext()
    result = AblationResult(dataset=dataset, parameter="column_scale")
    for scale in column_scales:
        run = run_algorithm(
            context,
            dataset,
            "hsgd_star",
            iterations=iterations,
            column_scale=scale,
        )
        result.times[f"columns x{scale:g}"] = run.engine_time
    return result


def ablation_stream_overlap(
    context: Optional[ExperimentContext] = None,
    datasets: Optional[List[str]] = None,
    iterations: Optional[int] = None,
) -> List[AblationResult]:
    """Disable CUDA-stream overlap on the GPU path and measure the cost."""
    context = context or ExperimentContext()
    datasets = datasets or list(context.datasets)
    results = []
    for dataset in datasets:
        result = AblationResult(dataset=dataset, parameter="stream_overlap")
        for label, overlap in (("overlapped", True), ("serial", False)):
            run = run_algorithm(
                context,
                dataset,
                "gpu_only",
                iterations=iterations,
                stream_overlap=overlap,
            )
            result.times[label] = run.engine_time
        results.append(result)
    return results
