"""Experiment harness: one entry point per table and figure of the paper.

Every public function in this package regenerates the data behind one of
the paper's evaluation artefacts (Section VII) on the simulated platform
and the scaled synthetic datasets:

========================  ==========================================
Function                  Paper artefact
========================  ==========================================
``figure3_block_throughput``   Figure 3(a)/(b): device update speed vs block size
``figure6_transfer_speed``     Figure 6(a)/(b): PCIe bandwidth vs transfer size
``figure7_kernel_throughput``  Figure 7: GPU kernel throughput vs block size
``figure10_vary_gpu_workers``  Figure 10: time-to-target vs GPU parallel workers
``figure11_vary_cpu_threads``  Figure 11: time-to-target vs CPU thread count
``figure12_rmse_curves``       Figure 12: test RMSE over training time
``figure13_division_ablation`` Figure 13: HSGD vs HSGD* RMSE over time
``table1_datasets``            Table I: dataset statistics and parameters
``table2_cost_models``         Table II: HSGD*-Q vs HSGD*-M split and runtime
``table3_dynamic_scheduling``  Table III: HSGD*-M vs HSGD* runtime
``observation_block_sensitivity``  Observations 1 and 2
``example3_update_imbalance``      Example 3: HSGD update-count imbalance
========================  ==========================================

plus the extra ablations called out in DESIGN.md
(:mod:`repro.experiments.ablations`).

All functions take an :class:`~repro.experiments.context.ExperimentContext`
so benchmarks, the CLI and tests can dial the workload up or down.
"""

from .context import ExperimentContext
from .throughput import (
    figure3_block_throughput,
    figure6_transfer_speed,
    figure7_kernel_throughput,
)
from .runtime import figure10_vary_gpu_workers, figure11_vary_cpu_threads
from .convergence import figure12_rmse_curves, figure13_division_ablation
from .tables import table1_datasets, table2_cost_models, table3_dynamic_scheduling
from .observations import example3_update_imbalance, observation_block_sensitivity
from .ablations import (
    ablation_alpha_sensitivity,
    ablation_column_rule,
    ablation_stream_overlap,
)

__all__ = [
    "ExperimentContext",
    "figure3_block_throughput",
    "figure6_transfer_speed",
    "figure7_kernel_throughput",
    "figure10_vary_gpu_workers",
    "figure11_vary_cpu_threads",
    "figure12_rmse_curves",
    "figure13_division_ablation",
    "table1_datasets",
    "table2_cost_models",
    "table3_dynamic_scheduling",
    "observation_block_sensitivity",
    "example3_update_imbalance",
    "ablation_alpha_sensitivity",
    "ablation_column_rule",
    "ablation_stream_overlap",
]
