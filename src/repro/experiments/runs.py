"""Shared run helper for the experiment harness."""

from __future__ import annotations

from typing import Optional

from ..core import HeterogeneousTrainer, TrainResult
from ..datasets import load_dataset
from .context import ExperimentContext


def run_algorithm(
    context: ExperimentContext,
    dataset_name: str,
    algorithm: str,
    cpu_threads: Optional[int] = None,
    gpu_parallel_workers: Optional[int] = None,
    iterations: Optional[int] = None,
    target_rmse: Optional[float] = None,
    column_scale: float = 1.0,
    stream_overlap: bool = True,
    alpha_override: Optional[float] = None,
) -> TrainResult:
    """Train one algorithm on one dataset under the harness defaults.

    Parameters mirror the sweep dimensions of the paper's evaluation:
    CPU thread count (Figure 11), GPU parallel workers (Figure 10), an
    iteration budget (Tables II/III) or an RMSE target (Figures 10/11),
    plus the ablation knobs (column rule, stream overlap, forced alpha).
    """
    data = load_dataset(dataset_name, seed=context.seed)
    training = data.spec.recommended_training(
        iterations=iterations if iterations is not None else context.iterations,
        seed=context.seed,
    )
    trainer = HeterogeneousTrainer(
        algorithm=algorithm,
        hardware=context.hardware(
            cpu_threads=cpu_threads, gpu_parallel_workers=gpu_parallel_workers
        ),
        training=training,
        preset=context.preset,
        column_scale=column_scale,
        stream_overlap=stream_overlap,
        seed=context.seed,
    )
    if target_rmse is not None:
        return trainer.fit(
            data.train,
            data.test,
            iterations=context.max_iterations,
            target_rmse=target_rmse,
            alpha_override=alpha_override,
        )
    return trainer.fit(
        data.train,
        data.test,
        iterations=training.iterations,
        alpha_override=alpha_override,
    )
