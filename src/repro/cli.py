"""Command-line interface.

``repro`` (alias ``repro-mf``, or ``python -m repro.cli``) exposes the
experiment harness so every table and figure of the paper can be
regenerated from a shell, plus training and serving entry points::

    repro list                      # show available experiments
    repro train --dataset movielens --algorithm hsgd_star
    repro recommend --dataset movielens --users 0 1 2   # train + top-K
    repro serve --synthetic --handle-out h.json         # HTTP front door
    repro recommend --attach h.json --users 0 1 2       # score via the segment
    repro serve-bench --items 17770                     # serving throughput
    repro ingest --dataset movielens --publish          # streaming replay
    repro gc-shm                    # reap shm segments orphaned by crashes
    repro tune --quick              # calibrate, write tuned_profile.json
    repro figure10                  # time-to-target vs GPU workers
    repro table2 --full             # Table II with the paper's sweep

Autotuning: ``repro tune`` fits the Section V cost models on this
machine and writes a reusable profile; ``--profile PATH`` on the
train/recommend/serve/serve-bench/ingest commands loads it, after which
every ``"auto"`` knob (``--workers auto``, ``--batch-size auto``,
``--chunk-items auto``, ``--backend auto``) resolves through it instead
of the hand-picked defaults.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .config import AUTO_BACKEND, AUTO_TUNABLE, DEFAULT_BATCH_SIZE, KERNEL_NAMES
from .core import ALGORITHMS, HeterogeneousTrainer
from .exec import Checkpoint, EarlyStopping, JsonlLogger, backend_names
from .serve import DEFAULT_CHUNK_ITEMS
from .serve.service import DEFAULT_SERVICE_BATCH
from .datasets import dataset_names, load_dataset
from .experiments import (
    ExperimentContext,
    ablation_alpha_sensitivity,
    ablation_column_rule,
    ablation_stream_overlap,
    example3_update_imbalance,
    figure3_block_throughput,
    figure6_transfer_speed,
    figure7_kernel_throughput,
    figure10_vary_gpu_workers,
    figure11_vary_cpu_threads,
    figure12_rmse_curves,
    figure13_division_ablation,
    observation_block_sensitivity,
    table1_datasets,
    table2_cost_models,
    table3_dynamic_scheduling,
)
from .experiments.tables import render_table1
from .metrics.reporting import format_mapping

EXPERIMENTS = (
    "figure3",
    "figure6",
    "figure7",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "table1",
    "table2",
    "table3",
    "observations",
    "ablations",
)


def _int_or_auto(text: str):
    """argparse type for knobs that accept an integer or ``"auto"``."""
    if text == AUTO_TUNABLE:
        return AUTO_TUNABLE
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or {AUTO_TUNABLE!r}, got {text!r}"
        ) from None


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help=(
            "load a tuned profile written by 'repro tune'; every 'auto' "
            "knob then resolves through it instead of the built-in defaults"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient Matrix Factorization on "
            "Heterogeneous CPU-GPU Systems' (ICDE 2021)."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list experiments, datasets and algorithms")

    train = subparsers.add_parser("train", help="train one algorithm on one dataset")
    train.add_argument("--dataset", default="movielens", choices=dataset_names())
    train.add_argument("--algorithm", default="hsgd_star", choices=sorted(ALGORITHMS))
    train.add_argument("--iterations", type=int, default=10)
    train.add_argument("--cpu-threads", type=int, default=16)
    train.add_argument(
        "--workers",
        type=_int_or_auto,
        default=None,
        metavar="N",
        help=(
            "number of CPU workers (overrides --cpu-threads): one worker "
            "thread/process per scheduler worker on the real execution "
            "backends; 'auto' resolves through a loaded --profile"
        ),
    )
    train.add_argument("--gpu-workers", type=int, default=128)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--backend",
        default="simulate",
        # Resolved at parser-build time so backends added with
        # repro.exec.register_backend() are accepted without a CLI edit.
        choices=(AUTO_BACKEND,) + backend_names(),
        help=(
            "execution backend: 'simulate' replays the run on the modelled "
            "hardware, 'threads' trains with real concurrent worker threads, "
            "'processes' with worker processes over shared-memory factors "
            "(true multicore scaling), 'auto' picks processes for "
            "multi-worker runs when the platform supports them; any backend "
            "registered via repro.exec.register_backend() is accepted"
        ),
    )
    train.add_argument(
        "--target-rmse",
        type=float,
        default=None,
        help="stop as soon as the test RMSE reaches this value",
    )
    train.add_argument(
        "--max-time",
        type=float,
        default=None,
        help=(
            "hard time budget in engine seconds (simulated seconds for the "
            "'simulate' backend, wall-clock seconds for 'threads')"
        ),
    )
    train.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "write a resumable checkpoint to PATH (.npz) every "
            "--checkpoint-every epochs; a '{epoch}' placeholder in PATH "
            "keeps one file per boundary"
        ),
    )
    train.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint frequency in epochs (default: every epoch)",
    )
    train.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help=(
            "resume from a checkpoint written by --checkpoint; the other "
            "flags must reproduce the checkpointed run (same dataset, "
            "algorithm, workers and seed), and --iterations counts the "
            "total epochs including the checkpointed ones"
        ),
    )
    train.add_argument(
        "--log-jsonl",
        metavar="PATH",
        default=None,
        help=(
            "write one JSON line per epoch (RMSE/time trajectory) to PATH; "
            "a fresh run truncates the file, a --resume run appends so the "
            "combined trajectory survives"
        ),
    )
    train.add_argument(
        "--early-stop-patience",
        type=int,
        default=None,
        metavar="N",
        help=(
            "stop after N consecutive epochs without test-RMSE improvement "
            "of at least --early-stop-min-delta"
        ),
    )
    train.add_argument(
        "--early-stop-min-delta",
        type=float,
        default=0.0,
        metavar="D",
        help="minimum RMSE decrease that counts as an improvement (default 0)",
    )
    train.add_argument(
        "--kernel",
        default="auto",
        choices=KERNEL_NAMES,
        help=(
            "SGD update kernel: 'auto' (default) uses the block-major local "
            "kernel over pre-gathered band data, 'minibatch' the global-index "
            "vectorised kernel (bitwise-identical), 'minibatch_local' forces "
            "the local kernel, 'sequential' the exact per-rating reference "
            "loop (slow)"
        ),
    )
    train.add_argument(
        "--batch-size",
        type=_int_or_auto,
        default=None,
        metavar="B",
        help=(
            "mini-batch length of the vectorised kernels (default "
            f"{DEFAULT_BATCH_SIZE}, 'auto' resolves through a loaded "
            "--profile); the 'sequential' reference kernel ignores it"
        ),
    )
    _add_profile_flag(train)

    recommend = subparsers.add_parser(
        "recommend",
        help="train (or load) a model and print top-K recommendations",
    )
    recommend.add_argument("--dataset", default="movielens", choices=dataset_names())
    recommend.add_argument(
        "--model",
        metavar="PATH",
        default=None,
        help=(
            "serve from a model saved with FactorModel.save instead of "
            "training one first"
        ),
    )
    recommend.add_argument("--iterations", type=int, default=10)
    recommend.add_argument("--seed", type=int, default=0)
    recommend.add_argument(
        "--users",
        type=int,
        nargs="+",
        default=[0],
        help="user ids to recommend for",
    )
    recommend.add_argument("--top", type=int, default=10, metavar="K")
    recommend.add_argument(
        "--exclude-seen",
        action="store_true",
        help="never recommend items the user already rated in the training set",
    )
    recommend.add_argument(
        "--chunk-items",
        type=_int_or_auto,
        default=DEFAULT_CHUNK_ITEMS,
        metavar="C",
        help=(
            f"item-axis tile width of the scorer (default: "
            f"{DEFAULT_CHUNK_ITEMS}, 'auto' resolves through a loaded "
            "--profile)"
        ),
    )
    _add_profile_flag(recommend)
    recommend.add_argument(
        "--attach",
        metavar="HANDLE",
        default=None,
        help=(
            "score zero-copy against a published ModelStore segment, "
            "described by a handle JSON written with 'repro serve "
            "--handle-out' (no dataset load, no training)"
        ),
    )
    recommend.add_argument(
        "--ann",
        action="store_true",
        help=(
            "serve from the approximate IVF index tier (builds one over "
            "the model, or maps the published one with --attach)"
        ),
    )
    recommend.add_argument(
        "--nlist",
        type=int,
        default=64,
        metavar="L",
        help="inverted lists when building an ANN index (default: 64)",
    )
    recommend.add_argument(
        "--nprobe",
        type=int,
        default=8,
        metavar="P",
        help="inverted lists probed per user on the ANN tier (default: 8)",
    )

    serve = subparsers.add_parser(
        "serve",
        help=(
            "publish a model to shared memory and serve top-K over HTTP "
            "(admission control, deadlines, hot-swappable readers)"
        ),
    )
    serve.add_argument(
        "--model",
        metavar="PATH",
        default=None,
        help="serve a model saved with FactorModel.save",
    )
    serve.add_argument(
        "--synthetic",
        action="store_true",
        help="serve a random model of --users x --items x --factors",
    )
    serve.add_argument("--users", type=int, default=20_000, metavar="M")
    serve.add_argument("--items", type=int, default=17_770, metavar="N")
    serve.add_argument("--factors", type=int, default=128, metavar="K")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8377,
        help="TCP port (0 picks a free ephemeral port)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="R", help="reader processes"
    )
    serve.add_argument("--top", type=int, default=10, metavar="K")
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="Q",
        help="max in-flight requests per reader before 503s (admission bound)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=1000.0,
        metavar="D",
        help="default per-request deadline (clients may lower it per request)",
    )
    serve.add_argument(
        "--handle-out",
        metavar="PATH",
        default=None,
        help=(
            "write the published ModelHandle as JSON, so other processes "
            "can attach with 'repro recommend --attach'"
        ),
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="S",
        help="serve for S seconds then exit (default: until interrupted)",
    )
    serve.add_argument(
        "--ann",
        action="store_true",
        help=(
            "build an IVF index over the model, publish it in the same "
            "segment, and serve every request from the approximate tier"
        ),
    )
    serve.add_argument(
        "--nlist",
        type=int,
        default=64,
        metavar="L",
        help="inverted lists of the published ANN index (default: 64)",
    )
    serve.add_argument(
        "--nprobe",
        type=int,
        default=8,
        metavar="P",
        help="inverted lists probed per request (default: 8)",
    )
    serve.add_argument(
        "--batch-size",
        type=_int_or_auto,
        default=DEFAULT_SERVICE_BATCH,
        metavar="B",
        help=(
            "reader-side coalescing batch (default: "
            f"{DEFAULT_SERVICE_BATCH}, 'auto' resolves through a loaded "
            "--profile)"
        ),
    )
    serve.add_argument(
        "--chunk-items",
        type=_int_or_auto,
        default=DEFAULT_CHUNK_ITEMS,
        metavar="C",
        help=(
            "item-axis tile width of the readers' scorer (default: "
            f"{DEFAULT_CHUNK_ITEMS}, 'auto' resolves through a loaded "
            "--profile)"
        ),
    )
    _add_profile_flag(serve)

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="measure top-K serving throughput (chunked vs naive vs full matmul)",
    )
    serve_bench.add_argument("--users", type=int, default=20_000, metavar="M")
    serve_bench.add_argument(
        "--items",
        type=int,
        default=17_770,
        metavar="N",
        help="catalogue size (default: the paper's Netflix item count)",
    )
    serve_bench.add_argument(
        "--factors",
        type=int,
        default=128,
        metavar="K",
        help="latent dimensionality (default: the paper's k = 128)",
    )
    serve_bench.add_argument(
        "--pool", type=int, default=2_048, help="number of user requests to score"
    )
    serve_bench.add_argument("--top", type=int, default=10, metavar="K")
    serve_bench.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[32, 256], metavar="B"
    )
    serve_bench.add_argument(
        "--chunk-sizes", type=int, nargs="+", default=[2_048, 8_192], metavar="C"
    )
    serve_bench.add_argument(
        "--readers",
        type=int,
        default=0,
        metavar="R",
        help=(
            "also measure R reader processes serving from one shared-memory "
            "model copy (0: skip)"
        ),
    )
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument(
        "--attach",
        metavar="HANDLE",
        default=None,
        help=(
            "measure against a published ModelStore segment (handle JSON "
            "from 'repro serve --handle-out') instead of a synthetic model"
        ),
    )
    serve_bench.add_argument(
        "--ann",
        action="store_true",
        help=(
            "also measure the approximate IVF tier (one row per --nprobe "
            "value, each with its recall@K against the exact scorer)"
        ),
    )
    serve_bench.add_argument(
        "--nlist",
        type=int,
        default=64,
        metavar="L",
        help="inverted lists when building the ANN index (default: 64)",
    )
    serve_bench.add_argument(
        "--nprobe",
        type=int,
        nargs="+",
        default=[4, 8, 16],
        metavar="P",
        help="nprobe values to sweep on the ANN tier (default: 4 8 16)",
    )
    serve_bench.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=(
            "also write every measured sample (label, tier, users/s, "
            "recall@K) as JSON"
        ),
    )
    _add_profile_flag(serve_bench)

    ingest = subparsers.add_parser(
        "ingest",
        help=(
            "replay a dataset as a rating stream: train on a prefix, then "
            "fold in / warm-start retrain / publish as the rest arrives"
        ),
    )
    ingest.add_argument("--dataset", default="movielens", choices=dataset_names())
    ingest.add_argument("--algorithm", default="hsgd_star", choices=sorted(ALGORITHMS))
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument(
        "--backend",
        default="simulate",
        choices=(AUTO_BACKEND,) + backend_names(),
        help="execution backend for the base train and every retrain",
    )
    ingest.add_argument("--cpu-threads", type=int, default=4)
    ingest.add_argument("--gpu-workers", type=int, default=128)
    ingest.add_argument("--iterations", type=int, default=10, help="base-train epochs")
    ingest.add_argument(
        "--retrain-iterations",
        type=int,
        default=None,
        metavar="N",
        help="epochs per warm-start retrain (default: --iterations)",
    )
    ingest.add_argument(
        "--base-fraction",
        type=float,
        default=0.7,
        metavar="F",
        help=(
            "fraction of the dataset's ratings (in storage order) the base "
            "model trains on; the rest is replayed as the stream — ratings "
            "referencing users/items absent from the prefix arrive as "
            "genuine newcomers"
        ),
    )
    ingest.add_argument(
        "--batch",
        type=int,
        default=500,
        metavar="B",
        help="stream ratings ingested per batch",
    )
    ingest.add_argument(
        "--window",
        type=int,
        default=1000,
        metavar="W",
        help="held-out recent window size (the drift validation set)",
    )
    ingest.add_argument(
        "--rmse-increase",
        type=float,
        default=0.05,
        metavar="D",
        help="window-RMSE increase over the rebased baseline that retrains",
    )
    ingest.add_argument(
        "--min-coverage",
        type=float,
        default=0.8,
        metavar="C",
        help="minimum scorable fraction of the window before retraining",
    )
    ingest.add_argument(
        "--publish",
        action="store_true",
        help=(
            "publish every live-model change to an in-process ModelStore "
            "(exercises the shared-memory hot-swap path)"
        ),
    )
    _add_profile_flag(ingest)

    tune = subparsers.add_parser(
        "tune",
        help=(
            "calibrate the cost models on this machine and write a tuned "
            "profile that resolves every 'auto' knob"
        ),
    )
    tune.add_argument(
        "--quick",
        action="store_true",
        help="reduced probe set (seconds instead of tens of seconds)",
    )
    tune.add_argument(
        "--out",
        metavar="PATH",
        default="tuned_profile.json",
        help="where to write the profile (default: tuned_profile.json)",
    )
    tune.add_argument(
        "--bench-out",
        metavar="PATH",
        default=None,
        help=(
            "also write the predicted-vs-measured probe report "
            "(the BENCH_tune.json payload CI gates on)"
        ),
    )
    tune.add_argument("--seed", type=int, default=0)

    gc_shm = subparsers.add_parser(
        "gc-shm",
        help=(
            "reap shared-memory segments whose owning process is gone "
            "(crashed trainers/publishers leave named segments in /dev/shm; "
            "every run records its segments in a per-pid manifest)"
        ),
    )
    gc_shm.add_argument(
        "--runtime-dir",
        metavar="DIR",
        default=None,
        help=(
            "manifest directory to scan (default: $REPRO_RUNTIME_DIR or "
            "<tmpdir>/repro-runtime)"
        ),
    )
    gc_shm.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be reaped without unlinking anything",
    )

    for name in EXPERIMENTS:
        experiment = subparsers.add_parser(name, help=f"run the {name} experiment")
        experiment.add_argument(
            "--full", action="store_true", help="use the paper's full sweep"
        )
        experiment.add_argument(
            "--quick", action="store_true", help="use a reduced smoke-test sweep"
        )
        experiment.add_argument(
            "--datasets", nargs="*", default=None, choices=dataset_names()
        )
    return parser


def _context(args: argparse.Namespace) -> ExperimentContext:
    if getattr(args, "full", False):
        context = ExperimentContext.full()
    elif getattr(args, "quick", False):
        context = ExperimentContext.quick()
    else:
        context = ExperimentContext()
    if getattr(args, "datasets", None):
        context.datasets = list(args.datasets)
    return context


#: Human-readable labels for the run's ``stop_reason``.
_STOP_REASON_LABELS = {
    "iterations": "iteration cap reached",
    "target_rmse": "target RMSE reached",
    "time_budget": "time budget exhausted",
    "early_stopping": "early stopping (no RMSE improvement)",
    "wall_time_budget": "wall-clock budget exhausted",
    "callback": "stopped by callback",
    "aborted": "aborted",
}


def _train_callbacks(args: argparse.Namespace) -> List:
    callbacks: List = []
    if args.early_stop_patience is not None:
        callbacks.append(
            EarlyStopping(
                patience=args.early_stop_patience,
                min_delta=args.early_stop_min_delta,
            )
        )
    if args.checkpoint is not None:
        callbacks.append(Checkpoint(args.checkpoint, every_n=args.checkpoint_every))
    if args.log_jsonl is not None:
        # A resumed run appends so the checkpointed prefix's trajectory
        # is not wiped.
        callbacks.append(JsonlLogger(args.log_jsonl, append=args.resume is not None))
    return callbacks


def _run_train(args: argparse.Namespace) -> None:
    from .tune.profile import resolve_workers

    data = load_dataset(args.dataset, seed=args.seed)
    # None -> --cpu-threads, "auto" -> the loaded profile (or
    # --cpu-threads without one), an integer passes through.
    cpu_threads = resolve_workers(args.workers, args.cpu_threads)
    context = ExperimentContext(
        cpu_threads=cpu_threads, gpu_parallel_workers=args.gpu_workers
    )
    training = data.spec.recommended_training(
        iterations=args.iterations, seed=args.seed
    )
    trainer = HeterogeneousTrainer(
        algorithm=args.algorithm,
        hardware=context.hardware(),
        training=training,
        preset=context.preset,
        seed=args.seed,
    )
    result = trainer.fit(
        data.train, data.test, iterations=args.iterations, backend=args.backend,
        kernel=args.kernel,
        batch_size=args.batch_size,
        target_rmse=args.target_rmse,
        max_simulated_time=args.max_time,
        callbacks=_train_callbacks(args),
        resume_from=args.resume,
    )
    # result.backend is the *resolved* name ("auto" never reaches here).
    if result.backend == "simulate":
        time_label = "simulated time (s)"
    elif result.backend in ("threads", "processes"):
        time_label = "wall time (s)     "
    else:
        time_label = "engine time (s)   "
    stop_label = _STOP_REASON_LABELS.get(result.stop_reason, result.stop_reason)
    print(f"dataset            : {args.dataset} ({data.train.nnz} train ratings)")
    print(f"algorithm          : {args.algorithm}")
    print(f"backend            : {result.backend}")
    print(f"kernel             : {args.kernel}")
    if args.resume is not None:
        print(f"resumed from       : {args.resume}")
    rmse_label = (
        f"{result.final_test_rmse:.4f}"
        if result.final_test_rmse is not None
        else "n/a (no completed epoch)"
    )
    print(f"iterations         : {len(result.trace.iterations)}")
    print(f"{time_label} : {result.engine_time:.6f}")
    print(f"final test RMSE    : {rmse_label}")
    print(f"stopped because    : {stop_label}")
    if result.alpha is not None:
        print(f"GPU workload share : {result.alpha:.3f}")
    share = result.trace.resource_share()
    print(f"processed on GPU   : {100 * share['gpu']:.1f}%")
    print(f"stolen tasks       : {result.trace.stolen_task_count()}")


def _run_recommend(args: argparse.Namespace) -> None:
    from .serve import PAD_ITEM, Scorer
    from .sgd import FactorModel

    segment = None
    index = None
    if args.attach is not None:
        from .serve.store import ModelHandle, attach_model

        if args.exclude_seen:
            raise SystemExit("--exclude-seen needs the dataset; drop --attach")
        # Both the handle load and the attach raise a clean ReproError
        # (missing file, missing segment, torn publish) that main()
        # turns into a one-line failure.
        handle = ModelHandle.load(args.attach)
        if args.ann:
            model, index, segment = attach_model(handle, with_index=True)
            if index is None:
                raise SystemExit(
                    "--ann but the published model carries no index; "
                    "republish with 'repro serve --ann'"
                )
        else:
            model, segment = attach_model(handle)
        print(
            f"model              : attached to segment {handle.segment!r} "
            f"(version {handle.version}, {handle.n_rows} users x "
            f"{handle.n_cols} items)"
        )
    elif args.model is not None:
        data = load_dataset(args.dataset, seed=args.seed)
        model = FactorModel.load(args.model)
        print(f"model              : loaded from {args.model} ({model!r})")
    else:
        data = load_dataset(args.dataset, seed=args.seed)
        from .core import factorize

        result = factorize(
            data.train,
            data.test,
            algorithm="hsgd_star",
            training=data.spec.recommended_training(
                iterations=args.iterations, seed=args.seed
            ),
            iterations=args.iterations,
            seed=args.seed,
        )
        model = result.model
        print(
            f"model              : trained {args.iterations} iterations, "
            f"test RMSE {result.final_test_rmse:.4f}"
        )
    exclude = data.train if args.exclude_seen else None
    if args.ann:
        from .serve import AnnScorer, IvfIndex

        if index is None:
            index = IvfIndex.build(model, nlist=args.nlist, seed=args.seed)
            print(
                f"ann index          : built nlist={args.nlist} "
                f"(seed {args.seed})"
            )
        scorer = AnnScorer(
            model,
            index,
            exclude=exclude,
            nprobe=args.nprobe,
            chunk_items=args.chunk_items,
        )
    else:
        scorer = Scorer(model, exclude=exclude, chunk_items=args.chunk_items)
    import numpy as np

    try:
        items, scores = scorer.top_k(np.asarray(args.users), args.top)
        print(f"scorer tier        : {scorer.tier}")
        print(f"excluding seen     : {args.exclude_seen}")
        for row, user in enumerate(args.users):
            ranked = ", ".join(
                f"{item}({score:.2f})"
                for item, score in zip(items[row], scores[row])
                if item != PAD_ITEM
            )
            print(f"top-{args.top} for user {user}: {ranked}")
    finally:
        if segment is not None:
            segment.close()


def _run_ingest(args: argparse.Namespace) -> None:
    import numpy as np

    from .serve import ModelStore
    from .sparse import SparseRatingMatrix
    from .stream import DriftPolicy, IngestSession

    data = load_dataset(args.dataset, seed=args.seed)
    full = data.train
    cut = max(1, int(full.nnz * args.base_fraction))
    if cut >= full.nnz:
        raise SystemExit("--base-fraction leaves no ratings to stream")
    # The base matrix's shape comes from the prefix alone, so stream
    # ratings referencing later users/items are genuine newcomers.
    matrix = SparseRatingMatrix(full.rows[:cut], full.cols[:cut], full.vals[:cut])
    context = ExperimentContext(
        cpu_threads=args.cpu_threads, gpu_parallel_workers=args.gpu_workers
    )
    trainer = HeterogeneousTrainer(
        algorithm=args.algorithm,
        hardware=context.hardware(),
        training=data.spec.recommended_training(
            iterations=args.iterations, seed=args.seed
        ),
        preset=context.preset,
        seed=args.seed,
    )
    store = ModelStore() if args.publish else None
    session = IngestSession(
        trainer,
        matrix,
        store=store,
        window_size=args.window,
        policy=DriftPolicy(
            rmse_increase=args.rmse_increase, min_coverage=args.min_coverage
        ),
        backend=args.backend,
        train_iterations=args.iterations,
        retrain_iterations=args.retrain_iterations,
    )
    try:
        result = session.start()
        print(
            f"base model         : {matrix.nnz} ratings "
            f"({full.nnz - cut} streamed), shape {matrix.shape}, "
            f"{len(result.trace.iterations)} epochs"
        )
        print(f"window             : {args.window} (batch {args.batch})")
        stream = np.arange(cut, full.nnz)
        for start in range(0, len(stream), args.batch):
            chunk = stream[start : start + args.batch]
            report = session.ingest(
                full.rows[chunk], full.cols[chunk], full.vals[chunk]
            )
            drift = report.drift
            drift_label = (
                "n/a"
                if drift is None or drift.rmse is None
                else f"{drift.rmse:.4f} ({drift.reason})"
            )
            line = (
                f"batch {start // args.batch:>4}: +{report.ingested} "
                f"graduated {report.graduated:>5}  window RMSE {drift_label}"
            )
            if report.folded_users or report.folded_items:
                line += (
                    f"  folded +{report.folded_users}u/+{report.folded_items}i"
                )
            if report.retrained:
                line += "  RETRAINED"
            if report.published_version is not None:
                line += f"  published v{report.published_version}"
            print(line)
        session.flush()
        stats = session.stats
        print(f"matrix             : {matrix.shape}, {matrix.nnz} ratings")
        print(f"model              : {session.model!r}")
        print(f"ingested           : {stats.ingested}")
        print(f"folded in          : {stats.folded_users} users, "
              f"{stats.folded_items} items")
        print(f"retrains           : {stats.retrains}")
        if store is not None:
            print(f"published versions : {stats.publishes}")
    finally:
        if store is not None:
            store.close()


def _run_serve_bench(args: argparse.Namespace) -> None:
    from .serve.bench import (
        measure_ann,
        measure_chunked,
        measure_full_matmul,
        measure_multi_reader,
        measure_naive,
        synthetic_model,
        user_pool,
    )

    segment = None
    attached_index = None
    if args.attach is not None:
        from .serve.store import ModelHandle, attach_model

        handle = ModelHandle.load(args.attach)
        model, attached_index, segment = attach_model(handle, with_index=True)
        n_users, n_items, factors = handle.n_rows, handle.n_cols, handle.latent_factors
        source = f"attached segment {handle.segment!r} (version {handle.version})"
    else:
        model = synthetic_model(args.users, args.items, args.factors, seed=args.seed)
        n_users, n_items, factors = args.users, args.items, args.factors
        source = "synthetic"
    pool = user_pool(n_users, args.pool, seed=args.seed)
    print(
        f"model: {n_users} users x {n_items} items, k={factors} [{source}]; "
        f"scoring {args.pool} requests, top-{args.top}"
    )
    samples = []

    def _row(sample, recall_note: str = "") -> None:
        samples.append(sample)
        recall = (
            ""
            if sample.recall_at_k is None
            else f"  recall@{args.top}={sample.recall_at_k:.4f}"
        )
        print(
            f"{sample.label:<32} {sample.tier:<8} {sample.users_per_s:>10.0f} "
            f"{sample.users_per_s / naive.users_per_s:>8.2f}x{recall}"
        )

    naive = measure_naive(model, pool, args.top)
    print(f"{'configuration':<32} {'tier':<8} {'users/s':>10} {'vs naive':>9}")
    _row(naive)
    _row(
        measure_full_matmul(
            model, pool, args.top, batch_size=max(args.batch_sizes)
        )
    )
    for batch_size in args.batch_sizes:
        for chunk_items in args.chunk_sizes:
            _row(measure_chunked(model, pool, args.top, batch_size, chunk_items))
    if args.ann:
        from .serve import IvfIndex, Scorer

        index = attached_index
        if index is None:
            index = IvfIndex.build(model, nlist=args.nlist, seed=args.seed)
        # Exact oracle slates once, reused across the nprobe sweep.
        exact_ids, _ = Scorer(model).top_k(pool, args.top)
        for nprobe in args.nprobe:
            _row(
                measure_ann(
                    model,
                    index,
                    pool,
                    args.top,
                    batch_size=max(args.batch_sizes),
                    nprobe=nprobe,
                    exact_ids=exact_ids,
                )
            )
    if args.readers > 0:
        _row(
            measure_multi_reader(
                model,
                pool,
                args.top,
                batch_size=max(args.batch_sizes),
                chunk_items=max(args.chunk_sizes),
                readers=args.readers,
            )
        )
    if args.json is not None:
        import json

        payload = {
            "model_shape": {
                "users": n_users,
                "items": n_items,
                "latent_factors": factors,
            },
            "top_k": args.top,
            "samples": [
                {
                    "label": sample.label,
                    "tier": sample.tier,
                    "users_per_s": round(sample.users_per_s, 1),
                    "recall_at_k": sample.recall_at_k,
                }
                for sample in samples
            ],
        }
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        print(f"json written       : {args.json}")
    if segment is not None:
        segment.close()


def _run_serve(args: argparse.Namespace) -> None:
    import asyncio

    from .serve import ModelStore
    from .serve.bench import synthetic_model
    from .service import RecommendServer, ServiceConfig
    from .sgd import FactorModel

    if args.model is not None:
        model = FactorModel.load(args.model)
        source = f"loaded from {args.model}"
    elif args.synthetic:
        model = synthetic_model(args.users, args.items, args.factors, seed=args.seed)
        source = "synthetic"
    else:
        raise SystemExit("repro serve needs --model PATH or --synthetic")
    index = None
    if args.ann:
        from .serve import IvfIndex

        index = IvfIndex.build(model, nlist=args.nlist, seed=args.seed)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        k=args.top,
        queue_depth=args.queue_depth,
        deadline=args.deadline_ms / 1000.0,
        batch_size=args.batch_size,
        chunk_items=args.chunk_items,
        ann=args.ann,
        nprobe=args.nprobe,
    )

    async def serve() -> None:
        server = RecommendServer(store, config)
        await server.start()
        try:
            print(f"listening          : http://{config.host}:{server.port}")
            print(
                f"readers            : {config.workers} "
                f"(k={config.k}, queue depth {config.queue_depth}/reader, "
                f"deadline {args.deadline_ms:g} ms)"
            )
            sys.stdout.flush()
            if args.duration is None:
                while True:
                    await asyncio.sleep(3600.0)
            else:
                await asyncio.sleep(args.duration)
        finally:
            await server.stop()

    with ModelStore() as store:
        handle = store.publish(model, index=index)
        tier_note = (
            f", ann index nlist={args.nlist} nprobe={args.nprobe}"
            if args.ann
            else ""
        )
        print(
            f"published          : version {handle.version} "
            f"({handle.n_rows} users x {handle.n_cols} items, "
            f"k={handle.latent_factors}, {source}{tier_note})"
        )
        if args.handle_out is not None:
            handle.save(args.handle_out)
            print(f"handle written     : {args.handle_out}")
        try:
            asyncio.run(serve())
        except KeyboardInterrupt:
            pass
    stats_note = "stopped cleanly"
    print(f"server             : {stats_note}")


def _run_tune(args: argparse.Namespace) -> None:
    import json
    import time

    from .tune import run_tune

    outcome = run_tune(quick=args.quick, seed=args.seed, created_unix=time.time())
    profile = outcome.profile
    fp = profile.fingerprint
    mode = "quick" if args.quick else "full"
    print(
        f"machine            : {fp.get('machine', '?')} "
        f"({fp.get('usable_cores', '?')} usable cores, "
        f"numpy {fp.get('numpy', '?')})"
    )
    print(f"probe set          : {mode}")
    sections = outcome.payload["tune"]["sections"]
    for name in sorted(sections):
        section = sections[name]
        budget = section["error_budget"]
        budget_label = f" (budget {budget:.0%})" if budget is not None else " (report-only)"
        print(
            f"  {name:<16} : predict error {section['predict_error']:.1%}"
            f"{budget_label}, {len(section['probes'])} probes"
        )
    t, s, st = profile.training, profile.serving, profile.stream
    print(
        f"training           : backend={t.backend} workers={t.workers} "
        f"batch_size={t.batch_size} kernel={t.kernel}"
    )
    print(f"serving            : chunk_items={s.chunk_items} batch_size={s.batch_size}")
    print(
        f"stream             : gram_chunk_elements={st.gram_chunk_elements} "
        f"foldin_batch_users={st.foldin_batch_users}"
    )
    if profile.alpha is not None:
        print(f"workload split     : alpha={profile.alpha:.3f}")
    acceptance = outcome.payload["tune"]["acceptance"]
    print(
        "acceptance         : "
        + ("met" if acceptance["met"] else "NOT MET")
        + " (resolved knobs measured no slower than defaults)"
    )
    profile.dump(args.out)
    print(f"profile written    : {args.out}")
    if args.bench_out is not None:
        with open(args.bench_out, "w", encoding="utf-8") as stream:
            json.dump(outcome.payload, stream, indent=2)
            stream.write("\n")
        print(f"bench written      : {args.bench_out}")


def _run_gc_shm(args: argparse.Namespace) -> None:
    from .shm import reap_orphaned_segments, runtime_dir

    runtime = args.runtime_dir or runtime_dir()
    report = reap_orphaned_segments(runtime=runtime, dry_run=args.dry_run)
    verb = "would reap" if args.dry_run else "reaped"
    print(f"runtime dir        : {runtime}")
    print(f"manifests scanned  : {report.scanned}")
    print(f"owners still alive : {report.skipped_live}")
    print(f"segments {verb:<9} : {report.total_reaped}")
    for name in report.reaped:
        print(f"  {verb} {name}")
    for name in report.missing:
        print(f"  already gone {name}")


def _run_experiment(name: str, args: argparse.Namespace) -> None:
    context = _context(args)
    if name == "figure3":
        for series in figure3_block_throughput():
            print(f"# {series.name}")
            print(series.render())
            print()
    elif name == "figure6":
        for series in figure6_transfer_speed():
            print(f"# {series.name}")
            print(series.render())
            print()
    elif name == "figure7":
        series = figure7_kernel_throughput()
        print(f"# {series.name}")
        print(series.render())
    elif name == "figure10":
        for sweep in figure10_vary_gpu_workers(context):
            print(f"# {sweep.dataset} (target RMSE {sweep.target_rmse})")
            print(sweep.render())
            print()
    elif name == "figure11":
        for sweep in figure11_vary_cpu_threads(context):
            print(f"# {sweep.dataset} (target RMSE {sweep.target_rmse})")
            print(sweep.render())
            print()
    elif name == "figure12":
        for outcome in figure12_rmse_curves(context):
            print(outcome.render())
            print()
    elif name == "figure13":
        for outcome in figure13_division_ablation(context):
            print(outcome.render())
            print()
    elif name == "table1":
        print(render_table1(table1_datasets(context)))
    elif name == "table2":
        for comparison in table2_cost_models(context):
            print(comparison.render())
            print()
    elif name == "table3":
        for comparison in table3_dynamic_scheduling(context):
            print(comparison.render())
            print()
    elif name == "observations":
        sensitivity = observation_block_sensitivity(context)
        print("Observation 1 (GPU speedup large/small blocks):",
              f"{sensitivity.gpu_speedup_large_over_small:.2f}x")
        print("Observation 2 (CPU speedup large/small blocks):",
              f"{sensitivity.cpu_speedup_large_over_small:.2f}x")
        imbalance = example3_update_imbalance(context)
        for algorithm, stats in imbalance.items():
            print(f"\nExample 3 update-count dispersion, {algorithm}:")
            print(format_mapping(stats))
    elif name == "ablations":
        alpha = ablation_alpha_sensitivity(context)
        print(f"# alpha sensitivity ({alpha.dataset})")
        print(format_mapping(alpha.times, "{:.6f}"))
        columns = ablation_column_rule(context)
        print(f"\n# column rule ({columns.dataset})")
        print(format_mapping(columns.times, "{:.6f}"))
        print("\n# stream overlap")
        for outcome in ablation_stream_overlap(context):
            print(f"{outcome.dataset}: " + format_mapping(outcome.times, "{:.6f}"))
    else:  # pragma: no cover - argparse restricts the choices
        raise ValueError(f"unknown experiment {name}")


def _run_list() -> None:
    print("experiments :", ", ".join(EXPERIMENTS))
    print("datasets    :", ", ".join(dataset_names()))
    print("algorithms  :", ", ".join(sorted(ALGORITHMS)))


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-mf`` console script.

    Operational failures (a handle file that does not exist, a segment
    whose publisher is gone, a torn publish) are reported as a one-line
    ``error: ...`` on stderr with a non-zero exit — never a traceback.
    """
    from .exceptions import ReproError

    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    try:
        if getattr(args, "profile", None) is not None:
            from .tune.profile import TunedProfile, set_active_profile

            set_active_profile(TunedProfile.load(args.profile))
        if args.command == "list":
            _run_list()
        elif args.command == "train":
            _run_train(args)
        elif args.command == "recommend":
            _run_recommend(args)
        elif args.command == "serve":
            _run_serve(args)
        elif args.command == "serve-bench":
            _run_serve_bench(args)
        elif args.command == "ingest":
            _run_ingest(args)
        elif args.command == "tune":
            _run_tune(args)
        elif args.command == "gc-shm":
            _run_gc_shm(args)
        else:
            _run_experiment(args.command, args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
